#include "check/cpp_parser.h"

#include <algorithm>
#include <array>

namespace ntr::check {

namespace {

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t) { return t.kind == TokenKind::kIdentifier; }

template <std::size_t N>
bool in_set(const std::array<std::string_view, N>& set, std::string_view s) {
  return std::find(set.begin(), set.end(), s) != set.end();
}

/// Keywords that read like a callee or a declared name at token level but
/// never are one.
constexpr std::array<std::string_view, 22> kNotACallee = {
    "if",       "for",           "while",    "switch",   "catch",
    "return",   "sizeof",        "alignof",  "alignas",  "decltype",
    "noexcept", "static_assert", "constexpr", "consteval", "typeid",
    "throw",    "new",           "delete",   "co_await", "co_return",
    "co_yield", "requires"};

/// Storage/cv/type keywords that may open or pad a declaration's type.
constexpr std::array<std::string_view, 17> kTypeKeywords = {
    "const",    "constexpr", "static",   "inline", "mutable", "volatile",
    "unsigned", "signed",    "long",     "short",  "auto",    "register",
    "thread_local", "typename", "struct", "class",  "union"};

/// Keywords that must never be recorded as a declared *name*.
constexpr std::array<std::string_view, 14> kNotAName = {
    "const", "constexpr", "static",   "inline", "mutable",  "volatile",
    "auto",  "return",    "if",       "else",   "operator", "public",
    "private", "protected"};

std::size_t match_forward(const std::vector<Token>& toks, std::size_t open) {
  const std::string_view o = toks[open].text;
  const std::string_view c = o == "(" ? ")" : o == "[" ? "]" : "}";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == c && --depth == 0) return i;
  }
  return toks.size();
}

std::size_t match_backward(const std::vector<Token>& toks, std::size_t close) {
  const std::string_view c = toks[close].text;
  const std::string_view o = c == ")" ? "(" : c == "]" ? "[" : "{";
  int depth = 0;
  for (std::size_t i = close + 1; i-- > 0;) {
    if (toks[i].kind != TokenKind::kPunct) continue;
    if (toks[i].text == c) ++depth;
    if (toks[i].text == o && --depth == 0) return i;
  }
  return toks.size();
}

/// Matching '>' of a template argument list opened at `open`, tracking
/// only '<'/'>' nesting and giving up at ';' or braces (a bare less-than
/// comparison). A '>>' token while two or more lists are open closes two
/// of them (`vector<vector<int>>` lexes the tail as one '>>' by maximal
/// munch); at lower depth it is an actual right shift and ends the
/// attempt, as does '<<'.
std::size_t match_template(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kPunct) continue;
    if (t.text == "(") {  // function types: function<void(std::size_t)>
      const std::size_t c = match_forward(toks, i);
      if (c >= toks.size()) break;
      i = c;
      continue;
    }
    if (t.text == "<") ++depth;
    if (t.text == ">" && --depth == 0) return i;
    if (t.text == ">>" && depth >= 2) {
      depth -= 2;
      if (depth == 0) return i;
      continue;
    }
    if (t.text == ";" || t.text == "{" || t.text == "}" || t.text == ")" ||
        t.text == "<<" || t.text == ">>")
      break;  // a bare less-than comparison, not a template argument list
  }
  return toks.size();
}

/// Start of the postfix chain the call at `name_index` belongs to:
/// walks back over `a::b`, `x.y`, `p->q`, and call/subscript groups, so
/// `io::try_read_net`, `result.status`, and `f(x).g` all root at their
/// leftmost token.
std::size_t chain_start(const std::vector<Token>& toks, std::size_t name_index) {
  std::size_t i = name_index;
  while (i >= 1) {
    const Token& prev = toks[i - 1];
    if (is_punct(prev, "::") || is_punct(prev, ".") || is_punct(prev, "->")) {
      if (i >= 2 && is_ident(toks[i - 2])) {
        i -= 2;
        continue;
      }
      if (i >= 2 && (is_punct(toks[i - 2], ")") || is_punct(toks[i - 2], "]"))) {
        const std::size_t open = match_backward(toks, i - 2);
        if (open >= toks.size() || open == 0) return i - 2;
        // The group itself may be a call/subscript on a longer chain.
        if (is_ident(toks[open - 1])) {
          i = open - 1;
          continue;
        }
        return open;
      }
      return i;  // e.g. `::global_fn(...)`
    }
    break;
  }
  return i;
}

bool type_tokens_have(const std::vector<std::string>& type,
                      std::string_view ident) {
  return std::find(type.begin(), type.end(), ident) != type.end();
}

}  // namespace

bool decl_type_has(const ParsedDecl& decl, std::string_view ident) {
  return type_tokens_have(decl.type_tokens, ident);
}

bool return_type_has(const ParsedFunction& fn, std::string_view ident) {
  return type_tokens_have(fn.return_tokens, ident);
}

int ParsedSource::scope_at(std::size_t index) const {
  int best = 0;
  for (std::size_t s = 1; s < scopes.size(); ++s) {
    const ParsedScope& sc = scopes[s];
    if (sc.begin < index && index < sc.end &&
        (best == 0 || sc.begin > scopes[static_cast<std::size_t>(best)].begin))
      best = static_cast<int>(s);
  }
  return best;
}

bool ParsedSource::scope_within(int scope, int maybe_ancestor) const {
  for (int s = scope; s >= 0;
       s = scopes[static_cast<std::size_t>(s)].parent) {
    if (s == maybe_ancestor) return true;
  }
  return false;
}

const ParsedDecl* ParsedSource::lookup(std::string_view name,
                                       std::size_t index) const {
  const int at = scope_at(index);
  const ParsedDecl* best = nullptr;
  for (const ParsedDecl& d : decls) {
    if (d.name != name) continue;
    if (!scope_within(at, d.scope)) continue;
    if (best == nullptr) {
      best = &d;
      continue;
    }
    const ParsedScope& ds = scopes[static_cast<std::size_t>(d.scope)];
    const ParsedScope& bs = scopes[static_cast<std::size_t>(best->scope)];
    if (ds.begin > bs.begin) {
      best = &d;  // deeper scope wins
    } else if (d.scope == best->scope) {
      // Same scope: last declaration at or before the use site wins.
      if (d.name_index <= index &&
          (best->name_index > index || d.name_index > best->name_index))
        best = &d;
    }
  }
  return best;
}

ParsedSource parse_source(const LexedSource& lexed) {
  const std::vector<Token>& toks = lexed.tokens;
  ParsedSource out;

  // ----------------------------------------------------------- scope tree
  out.scopes.push_back(ParsedScope{0, toks.size(), -1, -1,
                                   ParsedScope::Kind::kFile, ""});
  {
    std::vector<int> stack{0};
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (is_punct(toks[i], "{")) {
        ParsedScope sc;
        sc.begin = i;
        sc.end = match_forward(toks, i);
        sc.parent = stack.back();
        stack.push_back(static_cast<int>(out.scopes.size()));
        out.scopes.push_back(sc);
      } else if (is_punct(toks[i], "}") && stack.size() > 1) {
        stack.pop_back();
      }
    }
  }
  const auto scope_of_body = [&](std::size_t body_begin) {
    for (std::size_t s = 1; s < out.scopes.size(); ++s)
      if (out.scopes[s].begin == body_begin) return static_cast<int>(s);
    return -1;
  };

  // Splits the parameter list (lparen, rparen) into coarse declarations
  // for `scope`. A parameter's name is the last identifier of its
  // top-level segment, before any default argument; segments whose only
  // identifier-ish content is the type (unnamed parameters) are skipped.
  const auto parse_params = [&](std::size_t lparen, std::size_t rparen,
                                int scope) {
    std::size_t seg_begin = lparen + 1;
    int depth = 0;
    for (std::size_t i = lparen + 1; i <= rparen; ++i) {
      const bool at_end = i == rparen;
      if (!at_end && toks[i].kind == TokenKind::kPunct) {
        const std::string& p = toks[i].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
        if (p == "<") {
          const std::size_t close = match_template(toks, i);
          if (close < rparen) i = close;
          continue;
        }
      }
      if (!at_end && !(depth == 0 && is_punct(toks[i], ","))) continue;
      // Segment [seg_begin, i): trim a default argument, find the name.
      std::size_t seg_end = i;
      for (std::size_t k = seg_begin; k < i; ++k) {
        if (is_punct(toks[k], "=")) {
          seg_end = k;
          break;
        }
      }
      std::size_t name_at = toks.size();
      std::size_t ident_count = 0;
      for (std::size_t k = seg_begin; k < seg_end; ++k) {
        if (is_ident(toks[k]) &&
            !in_set(kTypeKeywords, std::string_view(toks[k].text))) {
          name_at = k;
        }
        if (is_ident(toks[k])) ++ident_count;
      }
      if (name_at < toks.size() && ident_count >= 2 &&
          (name_at + 1 == seg_end || !is_punct(toks[name_at + 1], "::")) &&
          !in_set(kNotAName, std::string_view(toks[name_at].text))) {
        ParsedDecl d;
        d.name = toks[name_at].text;
        for (std::size_t k = seg_begin; k < name_at; ++k)
          d.type_tokens.push_back(toks[k].text);
        d.name_index = name_at;
        d.line = toks[name_at].line;
        d.scope = scope;
        d.is_param = true;
        out.decls.push_back(std::move(d));
      }
      seg_begin = i + 1;
    }
  };

  // -------------------------------------------------------------- lambdas
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "[")) continue;
    // Subscripts follow a value; attributes are a second '[' deep.
    if (i >= 1 && (is_ident(toks[i - 1]) || is_punct(toks[i - 1], ")") ||
                   is_punct(toks[i - 1], "]")))
      continue;
    if (i + 1 < toks.size() && is_punct(toks[i + 1], "[")) {
      i = match_forward(toks, i);  // [[attribute]]
      if (i >= toks.size()) break;
      continue;
    }
    const std::size_t rb = match_forward(toks, i);
    if (rb >= toks.size()) continue;

    ParsedLambda lam;
    lam.intro = i;
    lam.line = toks[i].line;
    // Capture entries are separated by top-level commas.
    std::size_t entry = i + 1;
    int depth = 0;
    for (std::size_t k = i + 1; k <= rb; ++k) {
      const bool at_end = k == rb;
      if (!at_end && toks[k].kind == TokenKind::kPunct) {
        const std::string& p = toks[k].text;
        if (p == "(" || p == "[" || p == "{") ++depth;
        if (p == ")" || p == "]" || p == "}") --depth;
      }
      if (!at_end && !(depth == 0 && is_punct(toks[k], ","))) continue;
      const std::size_t b = entry, e = k;
      entry = k + 1;
      if (b >= e) continue;
      if (is_punct(toks[b], "&")) {
        if (b + 1 == e) {
          lam.default_by_ref = true;
        } else if (is_ident(toks[b + 1])) {
          lam.ref_captures.push_back(toks[b + 1].text);
        }
        continue;
      }
      if (is_punct(toks[b], "=") && b + 1 == e) {
        lam.default_by_value = true;
        continue;
      }
      if (is_punct(toks[b], "*") && b + 1 < e && toks[b + 1].text == "this") {
        lam.captures_this = true;
        continue;
      }
      if (is_ident(toks[b])) {
        if (toks[b].text == "this") {
          lam.captures_this = true;
        } else {
          lam.value_captures.push_back(toks[b].text);
        }
      }
    }

    std::size_t pos = rb + 1;
    std::size_t lparen = 0, rparen = 0;
    if (pos < toks.size() && is_punct(toks[pos], "(")) {
      lparen = pos;
      rparen = match_forward(toks, pos);
      if (rparen >= toks.size()) continue;
      pos = rparen + 1;
    }
    // Skip mutable/noexcept/attributes/trailing return up to the body.
    int tdepth = 0;
    while (pos < toks.size()) {
      const Token& t = toks[pos];
      if (tdepth == 0 && is_punct(t, "{")) break;
      if (tdepth == 0 && (is_punct(t, ";") || is_punct(t, ")") ||
                          is_punct(t, ",") || is_punct(t, "}")))
        break;  // captureless-reference `[]` misparse or lambda-free brackets
      if (is_punct(t, "(") || is_punct(t, "<")) ++tdepth;
      if (is_punct(t, ")") || is_punct(t, ">")) --tdepth;
      ++pos;
    }
    if (pos >= toks.size() || !is_punct(toks[pos], "{")) continue;
    lam.body_begin = pos;
    lam.body_end = match_forward(toks, pos);
    if (lam.body_end >= toks.size()) continue;
    lam.body_scope = scope_of_body(lam.body_begin);
    if (lparen != 0 && lam.body_scope >= 0)
      parse_params(lparen, rparen, lam.body_scope);
    out.lambdas.push_back(std::move(lam));
  }
  const auto inside_lambda_intro = [&](std::size_t idx) {
    for (const ParsedLambda& lam : out.lambdas)
      if (lam.intro <= idx && idx < lam.body_begin) return true;
    return false;
  };

  // ------------------------------------------------------------ functions
  // Candidate: identifier + balanced (...) followed (after qualifiers, a
  // trailing return type, or a constructor initializer list) by '{' or,
  // for declarations with a visible return type, ';'.
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !is_punct(toks[i + 1], "(")) continue;
    if (in_set(kNotACallee, std::string_view(toks[i].text))) continue;
    const std::size_t rp = match_forward(toks, i + 1);
    if (rp >= toks.size()) continue;

    std::size_t pos = rp + 1;
    bool gave_up = false;
    while (pos < toks.size()) {
      const Token& t = toks[pos];
      if (is_ident(t) && (t.text == "const" || t.text == "noexcept" ||
                          t.text == "override" || t.text == "final" ||
                          t.text == "mutable")) {
        if (pos + 1 < toks.size() && is_punct(toks[pos + 1], "(")) {
          const std::size_t c = match_forward(toks, pos + 1);  // noexcept(...)
          if (c >= toks.size()) {
            gave_up = true;
            break;
          }
          pos = c + 1;
        } else {
          ++pos;
        }
        continue;
      }
      if (is_punct(t, "&") || is_punct(t, "&&")) {
        ++pos;
        continue;
      }
      if (is_punct(t, "->")) {  // trailing return type: skip to '{' or ';'
        ++pos;
        int depth = 0;
        while (pos < toks.size()) {
          const Token& u = toks[pos];
          if (depth == 0 && (is_punct(u, "{") || is_punct(u, ";"))) break;
          if (is_punct(u, "(") || is_punct(u, "[")) ++depth;
          if (is_punct(u, ")") || is_punct(u, "]")) --depth;
          if (is_punct(u, "<")) {
            const std::size_t c = match_template(toks, pos);
            if (c < toks.size()) pos = c;
          }
          ++pos;
        }
        continue;
      }
      if (is_punct(t, ":")) {  // constructor initializer list
        ++pos;
        while (pos < toks.size()) {
          const Token& u = toks[pos];
          if (is_punct(u, "{")) {
            // `member{init}` vs the body: the body '{' follows ','-list
            // exhaustion, i.e. a '{' not directly after a member name.
            const bool member_init =
                pos >= 1 && (is_ident(toks[pos - 1]) || is_punct(toks[pos - 1], ">"));
            if (!member_init) break;
            const std::size_t c = match_forward(toks, pos);
            if (c >= toks.size()) break;
            pos = c + 1;
            continue;
          }
          if (is_punct(u, "(")) {
            const std::size_t c = match_forward(toks, pos);
            if (c >= toks.size()) break;
            pos = c + 1;
            continue;
          }
          if (is_punct(u, ";")) break;
          ++pos;
        }
        continue;
      }
      break;
    }
    if (gave_up || pos >= toks.size()) continue;
    const bool has_body = is_punct(toks[pos], "{");
    const bool is_decl_end = is_punct(toks[pos], ";");
    if (!has_body && !is_decl_end) continue;

    // Return type: tokens between the previous hard boundary and the
    // (possibly qualified) name chain. Attribute groups are dropped. A
    // '~' belongs to the chain (`ThreadPool::~ThreadPool`), so the
    // qualifier walk steps over it and the destructor keeps its class.
    std::size_t head_begin = i;
    const bool is_dtor = head_begin >= 1 && is_punct(toks[head_begin - 1], "~");
    if (is_dtor) --head_begin;
    while (head_begin >= 2 && is_punct(toks[head_begin - 1], "::") &&
           is_ident(toks[head_begin - 2]))
      head_begin -= 2;  // Foo::Bar::name
    std::vector<std::string> head;
    {
      std::size_t k = head_begin;
      while (k >= 1) {
        const Token& p = toks[k - 1];
        const bool head_token =
            is_ident(p) ||
            (p.kind == TokenKind::kPunct &&
             (p.text == "::" || p.text == "<" || p.text == ">" ||
              p.text == "," || p.text == "*" || p.text == "&" ||
              p.text == "&&" || p.text == "]" || p.text == "["));
        if (!head_token) break;
        --k;
      }
      bool in_attr = false;
      for (std::size_t h = k; h < head_begin; ++h) {
        if (is_punct(toks[h], "[") && h + 1 < head_begin &&
            is_punct(toks[h + 1], "["))
          in_attr = true;
        if (!in_attr && toks[h].kind != TokenKind::kPunct)
          head.push_back(toks[h].text);
        else if (!in_attr && toks[h].kind == TokenKind::kPunct &&
                 toks[h].text != "[" && toks[h].text != "]")
          head.push_back(toks[h].text);
        if (in_attr && is_punct(toks[h], "]") && h >= 1 &&
            is_punct(toks[h - 1], "]"))
          in_attr = false;
      }
      // `template`, storage keywords and `,`s from misc context add noise
      // but never the exact tokens the consumers test for.
    }
    // A comma directly before the chain means we are inside an argument
    // or declarator list, not in front of a return type.
    if (!head.empty() && head.front() == ",") continue;
    if (is_decl_end) {
      // Declarations require a visible return type (otherwise this is a
      // plain call statement) and must not sit inside executable code.
      bool typed = false;
      for (const std::string& h : head)
        if (h != "," && h != "*" && h != "&" && h != "&&" && h != "::" &&
            h != "<" && h != ">")
          typed = true;
      if (!typed) continue;
      if (inside_lambda_intro(i)) continue;
    }

    ParsedFunction fn;
    fn.name = is_dtor ? "~" + toks[i].text : toks[i].text;
    for (std::size_t q = head_begin; q < i; ++q) {
      if (!is_ident(toks[q])) continue;  // the :: / ~ of the chain
      if (!fn.qualifier.empty()) fn.qualifier += "::";
      fn.qualifier += toks[q].text;  // Foo::Bar:: chain walked above
    }
    fn.return_tokens = head;
    fn.name_index = i;
    fn.line = toks[i].line;
    if (has_body) {
      fn.body_begin = pos;
      fn.body_end = match_forward(toks, pos);
      if (fn.body_end >= toks.size()) continue;
      fn.body_scope = scope_of_body(pos);
    }
    out.functions.push_back(std::move(fn));
  }

  // Drop "declarations" that sit inside a function body: those are call
  // statements or `T x(3);` locals the declaration heuristic cannot
  // distinguish, and keeping them would pollute the project-wide
  // return-type map. This must happen before scopes are tagged with
  // function indices below: erasing afterwards would leave the tags
  // pointing into the shrunken vector.
  {
    std::vector<std::pair<std::size_t, std::size_t>> bodies;
    for (const ParsedFunction& fn : out.functions)
      if (fn.body_begin != 0) bodies.emplace_back(fn.body_begin, fn.body_end);
    std::erase_if(out.functions, [&](const ParsedFunction& fn) {
      if (fn.body_begin != 0) return false;
      for (const auto& [begin, end] : bodies)
        if (begin < fn.name_index && fn.name_index < end) return true;
      return false;
    });
  }

  // Tag every scope with its innermost enclosing function definition.
  for (std::size_t s = 0; s < out.scopes.size(); ++s) {
    std::size_t best_begin = 0;
    for (std::size_t f = 0; f < out.functions.size(); ++f) {
      const ParsedFunction& fn = out.functions[f];
      if (fn.body_begin == 0) continue;
      if (fn.body_begin <= out.scopes[s].begin &&
          out.scopes[s].end <= fn.body_end && fn.body_begin >= best_begin) {
        best_begin = fn.body_begin;
        out.scopes[s].function = static_cast<int>(f);
      }
    }
  }

  // Classify every scope. Function and lambda bodies are known exactly
  // from the recognizers above; namespace and class bodies are recovered
  // from the tokens between the previous hard boundary (';'/'{'/'}') and
  // the opening '{'. Everything else stays kBlock.
  {
    const auto body_of = [](const auto& items, std::size_t begin) {
      for (const auto& it : items)
        if (it.body_begin == begin && it.body_begin != 0) return true;
      return false;
    };
    for (std::size_t s = 1; s < out.scopes.size(); ++s) {
      ParsedScope& sc = out.scopes[s];
      if (body_of(out.lambdas, sc.begin)) {
        sc.kind = ParsedScope::Kind::kLambda;
        continue;
      }
      if (body_of(out.functions, sc.begin)) {
        sc.kind = ParsedScope::Kind::kFunction;
        continue;
      }
      std::size_t lo = 0;
      for (std::size_t k = sc.begin; k-- > 0;) {
        if (toks[k].kind == TokenKind::kPunct &&
            (toks[k].text == ";" || toks[k].text == "{" ||
             toks[k].text == "}")) {
          lo = k + 1;
          break;
        }
      }
      bool is_enum = false;
      std::size_t ns = toks.size();  // first 'namespace' keyword in window
      std::size_t kw = toks.size();  // last class/struct/union keyword
      for (std::size_t k = lo; k < sc.begin; ++k) {
        if (!is_ident(toks[k])) continue;
        const std::string& w = toks[k].text;
        if (w == "enum") is_enum = true;
        if (w == "namespace" && ns == toks.size()) ns = k;
        if (w == "class" || w == "struct" || w == "union") kw = k;
      }
      if (is_enum) continue;  // enum bodies are plain blocks
      if (ns < toks.size()) {
        sc.kind = ParsedScope::Kind::kNamespace;
        for (std::size_t k = ns + 1; k < sc.begin; ++k) {
          if (is_ident(toks[k])) {
            if (!sc.name.empty()) sc.name += "::";
            sc.name += toks[k].text;
          } else if (!is_punct(toks[k], "::")) {
            break;
          }
        }
        continue;
      }
      if (kw < toks.size() && kw + 1 < sc.begin && is_ident(toks[kw + 1])) {
        // Qualified nested definitions (`struct Server::Impl {`) carry the
        // declared class's own name in the last segment; the qualifier is
        // an out-of-line detail, exactly as for functions.
        std::size_t name_at = kw + 1;
        while (name_at + 2 < sc.begin && is_punct(toks[name_at + 1], "::") &&
               is_ident(toks[name_at + 2]))
          name_at += 2;
        // The name must head straight into the body or a base clause, so
        // `template <class T>` parameters never classify as a class.
        const std::size_t after = name_at + 1;
        const bool heads_body =
            after == sc.begin || is_punct(toks[after], ":") ||
            (is_ident(toks[after]) && toks[after].text == "final");
        if (heads_body &&
            !in_set(kNotAName, std::string_view(toks[name_at].text))) {
          sc.kind = ParsedScope::Kind::kClass;
          sc.name = toks[name_at].text;
          // Base clause: one base per top-level ','-segment, named by its
          // last identifier (`public std::logic_error` -> "logic_error",
          // `Base<T>` -> "Base").
          std::size_t b = after;
          while (b < sc.begin && !is_punct(toks[b], ":")) ++b;
          std::string base;
          for (std::size_t k = b + 1; k <= sc.begin && k <= toks.size(); ++k) {
            if (k == sc.begin || is_punct(toks[k], ",")) {
              if (!base.empty()) sc.bases.push_back(base);
              base.clear();
              continue;
            }
            if (is_punct(toks[k], "<")) {
              const std::size_t close = match_template(toks, k);
              if (close >= sc.begin) break;
              k = close;
              continue;
            }
            if (is_ident(toks[k]) && toks[k].text != "public" &&
                toks[k].text != "private" && toks[k].text != "protected" &&
                toks[k].text != "virtual")
              base = toks[k].text;
          }
        }
      }
    }
  }

  // Parameters of function definitions.
  for (const ParsedFunction& fn : out.functions) {
    if (fn.body_begin == 0 || fn.body_scope < 0) continue;
    const std::size_t lparen = fn.name_index + 1;
    parse_params(lparen, match_forward(toks, lparen), fn.body_scope);
  }

  // ----------------------------------------------------- declarations
  // `type-tokens name terminator` at statement starts. The type must
  // contribute at least one identifier besides the name.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    // A '(' directly after if/while/switch also starts a declaration
    // context: the C++17 init-statement form `if (auto s = f(); s.ok())`
    // and the condition-declaration form `while (Token t = next())`
    // both declare a name the condition (and the controlled scope)
    // reads, so the passes must see it. Unlike `for (`, an expression
    // condition is the common case there (`if (a && b)`), so such a
    // candidate is only accepted when it carries an initializer.
    const bool cond_start =
        i >= 2 && toks[i - 1].kind == TokenKind::kPunct &&
        toks[i - 1].text == "(" && is_ident(toks[i - 2]) &&
        (toks[i - 2].text == "if" || toks[i - 2].text == "while" ||
         toks[i - 2].text == "switch");
    const bool stmt_start =
        i == 0 || cond_start ||
        (toks[i - 1].kind == TokenKind::kPunct &&
         (toks[i - 1].text == ";" || toks[i - 1].text == "{" ||
          toks[i - 1].text == "}" || toks[i - 1].text == ":" ||
          (toks[i - 1].text == "(" && i >= 2 && is_ident(toks[i - 2]) &&
           toks[i - 2].text == "for")));
    if (!stmt_start || !is_ident(toks[i])) continue;
    if (in_set(kNotACallee, std::string_view(toks[i].text))) continue;

    // Parse the type: identifiers, '::', balanced template args, then
    // any '*' / '&' / '&&' declarator decoration.
    std::size_t k = i;
    std::size_t last_type_ident = toks.size();
    std::size_t ident_count = 0;
    while (k < toks.size()) {
      const Token& t = toks[k];
      if (is_ident(t)) {
        // A trailing NTR_GUARDED_BY(...) annotation is not part of the
        // declarator; stop so the identifier before it stays the name.
        if (t.text == "NTR_GUARDED_BY") break;
        // Two identifiers in a row with no '::' between them: the second
        // may be the declared name; remember the first as type material.
        last_type_ident = k;
        ++ident_count;
        ++k;
        continue;
      }
      if (is_punct(t, "::")) {
        ++k;
        continue;
      }
      if (is_punct(t, "<") && k >= 1 && is_ident(toks[k - 1])) {
        const std::size_t close = match_template(toks, k);
        if (close >= toks.size()) break;
        k = close + 1;
        continue;
      }
      if (is_punct(t, "*") || is_punct(t, "&") || is_punct(t, "&&")) {
        ++k;
        continue;
      }
      break;
    }
    if (ident_count < 2 || last_type_ident >= toks.size()) continue;
    // The declared name is the last identifier parsed, and it must not be
    // type-keyword padding (`unsigned long x` parses x, not long).
    const std::size_t name_at = last_type_ident;
    if (in_set(kTypeKeywords, std::string_view(toks[name_at].text))) continue;
    if (in_set(kNotAName, std::string_view(toks[name_at].text))) continue;
    // Name must be followed directly by a declarator terminator; '*'/'&'
    // between name and terminator means `a * b` style, already handled by
    // the loop having consumed them as type tokens.
    if (k != name_at + 1) continue;
    if (k >= toks.size()) continue;
    // `NTR_GUARDED_BY(<mutex-expr>)` between the name and the terminator:
    // record the guarding expression and resume at the real terminator.
    std::string guarded_by;
    if (is_ident(toks[k]) && toks[k].text == "NTR_GUARDED_BY" &&
        k + 1 < toks.size() && is_punct(toks[k + 1], "(")) {
      const std::size_t close = match_forward(toks, k + 1);
      if (close >= toks.size()) continue;
      for (std::size_t h = k + 2; h < close; ++h) guarded_by += toks[h].text;
      k = close + 1;
      if (k >= toks.size()) continue;
    }
    static constexpr std::array<std::string_view, 7> kTerm = {
        "=", ";", ",", "{", "[", ":", ")"};
    // Direct-initialization `T x(3);` -- but only when the name is not
    // itself qualified: `io::try_read_net(buf);` is a call statement, not
    // a declaration of `try_read_net` with type tokens {io, ::}.
    const bool ctor_init =
        is_punct(toks[k], "(") &&
        !(name_at >= 1 && is_punct(toks[name_at - 1], "::")) &&
        out.scopes[static_cast<std::size_t>(out.scope_at(i))].function != -1;
    if (!ctor_init &&
        !(toks[k].kind == TokenKind::kPunct &&
          in_set(kTerm, std::string_view(toks[k].text))))
      continue;
    // In an if/while/switch head, `a && b` / `a * b` are expressions far
    // more often than declarations; require a visible initializer there.
    if (cond_start && !ctor_init && !is_punct(toks[k], "=") &&
        !is_punct(toks[k], "{"))
      continue;
    if (is_punct(toks[k], "[")) {
      // Array declarator `int a[4]` is fine; `a[i] = ...` subscript writes
      // were already excluded because they need a preceding value context.
      const std::size_t close = match_forward(toks, k);
      if (close >= toks.size()) continue;
    }

    ParsedDecl d;
    d.name = toks[name_at].text;
    for (std::size_t h = i; h < name_at; ++h) d.type_tokens.push_back(toks[h].text);
    d.name_index = name_at;
    d.line = toks[name_at].line;
    d.scope = out.scope_at(name_at);
    d.guarded_by = std::move(guarded_by);
    if (ctor_init) {
      // Top-level comma segments of `T x(a, b, ...)`, tokens concatenated;
      // this is the multi-mutex scoped_lock / tagged unique_lock surface
      // the lock-discipline pass consumes.
      const std::size_t close = match_forward(toks, k);
      if (close < toks.size()) {
        std::size_t depth = 0;
        std::string arg;
        for (std::size_t h = k + 1; h < close; ++h) {
          const Token& t = toks[h];
          if (t.kind == TokenKind::kPunct) {
            if (t.text == "(" || t.text == "[" || t.text == "{") ++depth;
            if (t.text == ")" || t.text == "]" || t.text == "}")
              depth = depth == 0 ? 0 : depth - 1;
            if (t.text == "," && depth == 0) {
              if (!arg.empty()) d.init_args.push_back(arg);
              arg.clear();
              continue;
            }
          }
          arg += t.text;
        }
        if (!arg.empty()) d.init_args.push_back(std::move(arg));
      }
    }
    out.decls.push_back(std::move(d));

    // Multi-declarator `int a, b = 0;`: record the trailing names too.
    std::size_t m = k;
    while (m < toks.size() && !is_punct(toks[m], ";")) {
      if (is_punct(toks[m], "(") || is_punct(toks[m], "[") ||
          is_punct(toks[m], "{")) {
        const std::size_t close = match_forward(toks, m);
        if (close >= toks.size()) break;
        m = close + 1;
        continue;
      }
      if (is_punct(toks[m], ",") && m + 1 < toks.size() &&
          is_ident(toks[m + 1]) && m + 2 < toks.size() &&
          toks[m + 2].kind == TokenKind::kPunct &&
          (toks[m + 2].text == "=" || toks[m + 2].text == ";" ||
           toks[m + 2].text == ",")) {
        ParsedDecl extra;
        extra.name = toks[m + 1].text;
        extra.type_tokens = out.decls.back().type_tokens;
        extra.name_index = m + 1;
        extra.line = toks[m + 1].line;
        extra.scope = out.decls.back().scope;
        out.decls.push_back(std::move(extra));
        m += 2;
        continue;
      }
      if (is_punct(toks[m], "}") || is_punct(toks[m], ")")) break;
      ++m;
    }
    i = name_at;  // resume after the declared name
  }

  // ----------------------------------------------------------------- calls
  const auto is_function_name_index = [&](std::size_t idx) {
    for (const ParsedFunction& fn : out.functions)
      if (fn.name_index == idx) return true;
    return false;
  };
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (!is_ident(toks[i]) || !is_punct(toks[i + 1], "(")) continue;
    if (in_set(kNotACallee, std::string_view(toks[i].text))) continue;
    if (is_function_name_index(i)) continue;
    const std::size_t rp = match_forward(toks, i + 1);
    if (rp >= toks.size()) continue;

    ParsedCall call;
    call.callee = toks[i].text;
    call.name_index = i;
    call.lparen = i + 1;
    call.rparen = rp;
    call.line = toks[i].line;
    call.member_call =
        i >= 1 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
    if (call.member_call && i >= 2 && is_ident(toks[i - 2]))
      call.receiver = toks[i - 2].text;  // "" for f(x).g(), a[i].g()
    if (!call.member_call && i >= 2 && is_punct(toks[i - 1], "::") &&
        is_ident(toks[i - 2])) {
      std::size_t q = i;
      while (q >= 2 && is_punct(toks[q - 1], "::") && is_ident(toks[q - 2]))
        q -= 2;
      for (std::size_t h = q; h + 1 < i; h += 2) {
        if (!call.qualifier.empty()) call.qualifier += "::";
        call.qualifier += toks[h].text;
      }
    }
    call.scope = out.scope_at(i);

    const std::size_t start = chain_start(toks, i);
    const bool stmt_rooted =
        start == 0 ||
        (toks[start - 1].kind == TokenKind::kPunct &&
         (toks[start - 1].text == ";" || toks[start - 1].text == "{" ||
          toks[start - 1].text == "}"));
    call.void_cast = start >= 3 && is_punct(toks[start - 1], ")") &&
                     toks[start - 2].text == "void" &&
                     is_punct(toks[start - 3], "(");
    const bool chain_ends_here =
        rp + 1 < toks.size() && is_punct(toks[rp + 1], ";");
    call.discarded = stmt_rooted && chain_ends_here && !call.void_cast;
    out.calls.push_back(std::move(call));
  }

  return out;
}

}  // namespace ntr::check
