#pragma once

#include <source_location>
#include <string>
#include <vector>

#include "check/contracts.h"

namespace ntr::check {

/// Outcome of a structural validator: an empty error list means the object
/// satisfies every checked invariant. Validators never throw on invalid
/// input -- they describe what is wrong so callers can decide (report,
/// contract-fail, or repair).
struct ValidationReport {
  std::vector<std::string> errors;

  [[nodiscard]] bool ok() const { return errors.empty(); }

  /// All errors joined with "; " -- the message body of a failed contract.
  [[nodiscard]] std::string to_string() const {
    std::string out;
    for (const std::string& e : errors) {
      if (!out.empty()) out += "; ";
      out += e;
    }
    return out;
  }
};

/// Routes a failed validation through the contract-failure policy. `what`
/// names the object/postcondition being validated. Returns true so it can
/// sit inside NTR_DCHECK(...) and be compiled out with it in release
/// builds.
inline bool require(const ValidationReport& report, const char* what,
                    std::source_location loc = std::source_location::current()) {
  if (!report.ok()) {
    fail("NTR_VALIDATE", what, loc.file_name(), static_cast<int>(loc.line()),
         report.to_string());
  }
  return true;
}

}  // namespace ntr::check
