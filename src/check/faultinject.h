#pragma once

#include <cstdint>
#include <span>

#include "runtime/status.h"

/// Deterministic, seeded fault injection for exercising the degradation
/// ladder in CI.
///
/// Production code marks recoverable failure boundaries with
///
///   NTR_FAULT_POINT(kLuSingular);
///
/// naming a site from the fixed FaultSite table below. In a normal build
/// the macro expands to nothing (zero code, zero data). When the tree is
/// configured with -DNTR_FAULT_INJECTION=ON the macro polls the site: if
/// the site is armed and its hit counter reaches the armed trigger, the
/// poll throws runtime::NtrError with the site's StatusCode -- exactly
/// the typed failure the real fault would produce, at exactly the Nth
/// execution of that site, on every run. Tests arm sites through the
/// programmatic API; the CLI/CI arm them through the NTR_FAULT_SPEC
/// environment variable:
///
///   NTR_FAULT_SPEC="lu-singular@3,transient-nonfinite@1"
///
/// fires the lu-singular site on its 3rd hit and the transient-nonfinite
/// site on its 1st, then leaves them quiescent (one shot per arm).
namespace ntr::check::fault {

/// Every fault-injection site in the tree. Central (not discovered at
/// run time) so a chaos test can iterate all sites and prove each one
/// fires. Keep in sync with kSiteInfos in faultinject.cpp.
enum class FaultSite : std::uint8_t {
  kLuSingular,           ///< dense LU pivot collapse
  kCholeskyNotSpd,       ///< dense/sparse Cholesky loses positive-definiteness
  kDcSingular,           ///< MNA DC operating-point solve singular
  kTransientNonFinite,   ///< NaN/inf waveform mid time-march
  kLdrgAllocation,       ///< candidate-buffer allocation failure in LDRG
  kLdrgDeadline,         ///< deadline trip at an LDRG round boundary
  kTransientDeadline,    ///< deadline trip inside the transient march
  kServeQueuePush,       ///< admission failure pushing into the FairQueue
  kServeJsonParse,       ///< request-document JSON parse failure
  kServeFrameDecode,     ///< frame-header decode failure (stream poison)
  kServeWorkerDispatch,  ///< worker-lane dispatch failure in ntr_serve
  kIoNetParse,           ///< net-text parse failure in io::try_read_net
};
inline constexpr std::size_t kFaultSiteCount = 12;

struct SiteInfo {
  FaultSite site;
  const char* name;              ///< spec/spell-out name ("lu-singular")
  runtime::StatusCode code;      ///< what an injected failure throws
};

/// The full site table, indexed by static_cast<size_t>(site).
[[nodiscard]] std::span<const SiteInfo, kFaultSiteCount> sites();
[[nodiscard]] const SiteInfo& site_info(FaultSite site);

/// True when the tree was compiled with -DNTR_FAULT_INJECTION=ON.
[[nodiscard]] bool compiled_in();

/// Arms `site` to fire once, on its `fire_at_hit`-th poll from now
/// (1-based; 1 = the very next poll). Re-arming replaces the trigger.
void arm(FaultSite site, std::uint64_t fire_at_hit = 1);

/// Disarms every site and zeroes all hit/fired counters.
void reset();

/// Polls since the last reset() / arm() bookkeeping.
[[nodiscard]] std::uint64_t hit_count(FaultSite site);
/// How many times the site actually threw.
[[nodiscard]] std::uint64_t fired_count(FaultSite site);

/// Parses NTR_FAULT_SPEC ("name@N,name@N"; unknown names and malformed
/// entries are ignored with a note on stderr) and arms accordingly.
/// Returns the number of sites armed. Called lazily by the first poll,
/// so env-driven injection needs no tool support.
std::size_t configure_from_environment();

/// The runtime half of NTR_FAULT_POINT. Cheap when nothing is armed:
/// one relaxed atomic load. Throws runtime::NtrError when a trigger
/// fires. Thread-safe.
void poll(FaultSite site);

}  // namespace ntr::check::fault

#if defined(NTR_FAULT_INJECTION)
#define NTR_FAULT_POINT(site) \
  ::ntr::check::fault::poll(::ntr::check::fault::FaultSite::site)
#else
#define NTR_FAULT_POINT(site) static_cast<void>(0)
#endif
