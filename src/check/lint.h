#pragma once

#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ntr::check {

/// One repo-specific style/correctness finding from the ntr_lint pass.
struct LintDiagnostic {
  std::string file;   ///< repo-relative path with '/' separators
  std::size_t line = 0;  ///< 1-based; 0 for whole-file findings
  std::string rule;
  std::string message;
};

/// "file:line: [rule] message" -- clickable in editors and CI logs.
[[nodiscard]] std::string format(const LintDiagnostic& d);

/// Scans one translation unit's text. `path` (repo-relative, '/'
/// separators) selects which rules apply:
///
///   raw-assert             everywhere: assert(...) calls or <cassert>
///                          includes instead of the NTR_* contract macros
///   pragma-once            headers (.h/.hpp) must contain #pragma once
///   using-namespace-header no `using namespace` at header scope
///   unseeded-rng           src/core/ and src/route/: rand()/srand()/
///                          random_shuffle or default-constructed standard
///                          engines (results must be reproducible, so
///                          randomness is always injected and seeded)
///   cout-in-library        src/: no std::cout / bare printf in library
///                          code (tools, benches and examples may print)
///   untyped-throw          src/{core,sim,flow,linalg,runtime,delay}/: throw
///                          typed ntr::runtime::NtrError on hot paths, not
///                          bare std::runtime_error
///   unchecked-narrowing    src/serve/: no narrowing static_cast of a
///                          size- or wire-typed value (`.size()`,
///                          `.length()`, `as_number()`) -- clamp or
///                          range-check first; sizes are 64-bit and wire
///                          numbers are doubles, so an out-of-range
///                          conversion is undefined behavior
///
/// Comments and string/char literals are ignored. A line containing
/// `ntr-lint-allow(<rule>)` (or `ntr-lint-allow(all)`) suppresses findings
/// of that rule on that line; `ntr-lint-allow-file(<rule>)` anywhere in
/// the file suppresses the rule for the whole file.
[[nodiscard]] std::vector<LintDiagnostic> lint_source(std::string_view path,
                                                      std::string_view content);

/// The suppression predicate behind `ntr-lint-allow(...)`, shared with the
/// `ntr_analyze` passes so every static-analysis finding in the repo obeys
/// one syntax: true when `raw_line` carries `ntr-lint-allow(<rule>)` or
/// `ntr-lint-allow(all)`, or `file_content` carries
/// `ntr-lint-allow-file(<rule>)` anywhere.
[[nodiscard]] bool lint_suppressed(std::string_view raw_line,
                                   std::string_view file_content,
                                   std::string_view rule);

/// Reads and scans one file. `repo_root` is stripped from the reported
/// path. Unreadable files yield a single diagnostic under rule "io".
[[nodiscard]] std::vector<LintDiagnostic> lint_file(
    const std::filesystem::path& repo_root, const std::filesystem::path& file);

/// Walks files and directories (recursively; .h/.hpp/.cc/.cpp only),
/// scanning each file. Directories named "lint_fixtures", hidden
/// directories, and directories whose name starts with "build" are
/// skipped during recursion -- pass such a directory explicitly to scan
/// it (that is how the fixture corpus tests the linter).
[[nodiscard]] std::vector<LintDiagnostic> lint_paths(
    const std::filesystem::path& repo_root,
    std::span<const std::filesystem::path> paths);

}  // namespace ntr::check
