#include "serve/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstring>
#include <limits>
#include <map>
#include <mutex>
#include <optional>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/annotations.h"
#include "core/parallel.h"
#include "runtime/stop.h"
#include "serve/chaos.h"
#include "serve/json.h"
#include "serve/protocol.h"
#include "serve/queue.h"

namespace ntr::serve {

using runtime::Status;
using runtime::StatusCode;

namespace {

/// epoll user-data ids for the two non-connection descriptors; client
/// connections get ids from kFirstClientId up.
constexpr std::uint64_t kListenId = 0;
constexpr std::uint64_t kWakeId = 1;
constexpr std::uint64_t kFirstClientId = 2;

}  // namespace

struct Server::Impl {
  explicit Impl(ServerOptions opts)
      : options(std::move(opts)),
        queue(options.queue_capacity) {}

  // ---- immutable after start() ----
  ServerOptions options;

  // ---- event-loop-owned state ----
  struct Connection {
    Connection(int fd_in, std::size_t max_frame_bytes)
        : fd(fd_in), decoder(max_frame_bytes) {}
    int fd;
    FrameDecoder decoder;
    std::string outbuf;     ///< pending response bytes (frames included)
    std::size_t outpos = 0; ///< sent prefix of outbuf
    std::size_t inflight = 0;  ///< queued + executing work items
    std::uint32_t events = 0;  ///< current epoll interest mask
    bool want_close = false;   ///< close once outbuf flushed
    bool dead = false;         ///< fatal socket error; close now
  };

  // std::map, not unordered_map: the drain path iterates connections and
  // the analyzer's nondeterministic-iteration rule (and plain sanity)
  // wants a stable order.
  std::map<std::uint64_t, Connection> conns;
  std::uint64_t next_client_id = kFirstClientId;
  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_fd = -1;
  std::uint16_t bound_port = 0;
  bool draining = false;

  // ---- cross-thread state ----
  FairQueue queue;
  runtime::CancelSource cancel;
  std::atomic<bool> shutdown_requested{false};
  std::atomic<bool> workers_done{false};
  std::atomic<bool> loop_running{false};

  /// What each worker lane is doing right now, for the watchdog. One
  /// CancelSource per in-flight item so an escalation cancels exactly
  /// the wedged solve, not its lane-mates.
  struct LaneSlot {
    bool busy = false;
    runtime::CancelSource item_cancel;
    runtime::Deadline escalate_at;  ///< unbounded = never escalate
    bool escalated = false;
  };
  std::mutex lanes_mutex;
  std::vector<LaneSlot> lanes NTR_GUARDED_BY(lanes_mutex);

  std::thread watchdog_thread;
  std::mutex watchdog_mutex;
  std::condition_variable watchdog_cv;
  bool watchdog_stop NTR_GUARDED_BY(watchdog_mutex) = false;

  std::chrono::steady_clock::time_point started{};

  /// Response frames for one completed work item, already serialized and
  /// frame-encoded by the worker so the loop only memcpys.
  struct Completion {
    std::uint64_t client = 0;
    std::vector<std::string> frames;
  };
  std::mutex completions_mutex;
  std::vector<Completion> completions NTR_GUARDED_BY(completions_mutex);

  std::unique_ptr<core::ThreadPool> pool;
  std::thread loop_thread;
  std::thread driver_thread;
  std::mutex join_mutex;

  // ---- stats ----
  std::atomic<std::uint64_t> st_accepted{0}, st_closed{0}, st_frames_in{0},
      st_admitted{0}, st_frames_out{0}, st_overloaded{0}, st_bad_request{0},
      st_protocol_errors{0}, st_watchdog_scans{0}, st_watchdog_cancels{0};

  // ---------------------------------------------------------------------
  // Cross-thread plumbing.

  /// Async-signal-safe wakeup of the event loop.
  void wake() {
    if (wake_fd < 0) return;
    const std::uint64_t one = 1;
    // A full eventfd counter still leaves the loop runnable; ignore.
    (void)!::write(wake_fd, &one, sizeof one);
  }

  /// The watchdog escalation point for one item: its admission deadline
  /// plus the grace window, capped by the absolute stall ceiling.
  /// Unbounded when neither applies (an unbounded-deadline item with no
  /// stall ceiling is allowed to run forever).
  [[nodiscard]] runtime::Deadline escalate_deadline(
      const runtime::Deadline& admission) const {
    double s = std::numeric_limits<double>::infinity();
    if (!admission.unbounded())
      s = admission.remaining_s() + options.watchdog_grace_ms / 1e3;
    if (options.watchdog_stall_ms > 0.0)
      s = std::min(s, options.watchdog_stall_ms / 1e3);
    if (!std::isfinite(s)) return runtime::Deadline{};
    return runtime::Deadline::after_s(s);
  }

  void worker_loop(std::size_t lane) {
    while (std::optional<WorkItem> item = queue.pop()) {
      runtime::CancelSource item_cancel;
      {
        std::lock_guard<std::mutex> lock(lanes_mutex);
        LaneSlot& slot = lanes[lane];
        slot.busy = true;
        slot.item_cancel = item_cancel;
        slot.escalate_at = escalate_deadline(item->deadline);
        slot.escalated = false;
      }
      // A forced shutdown that raced the install still reaches this item.
      if (cancel.cancel_requested()) item_cancel.request_cancel();
      Completion comp;
      comp.client = item->client;
      try {
        for (const Response& r :
             execute_work_item(*item, options.service, item_cancel.token()))
          comp.frames.push_back(encode_frame(r.to_json()));
      } catch (const std::exception& e) {
        // Serialization failure (e.g. a non-finite delay the JSON layer
        // refuses to emit) must not kill the lane.
        comp.frames.assign(
            1, encode_frame(make_error_response(item->request->id,
                                                ResponseStatus::kInternal,
                                                e.what())
                                .to_json()));
      }
      {
        std::lock_guard<std::mutex> lock(lanes_mutex);
        lanes[lane].busy = false;
      }
      {
        std::lock_guard<std::mutex> lock(completions_mutex);
        completions.push_back(std::move(comp));
      }
      wake();
    }
  }

  /// Forced shutdown: the sticky global flag plus every in-flight item.
  void cancel_all() {
    cancel.request_cancel();
    std::lock_guard<std::mutex> lock(lanes_mutex);
    for (LaneSlot& slot : lanes)
      if (slot.busy) slot.item_cancel.request_cancel();
  }

  void watchdog_loop() {
    const auto interval = std::chrono::duration<double, std::milli>(
        options.watchdog_interval_ms);
    std::unique_lock<std::mutex> lock(watchdog_mutex);
    while (!watchdog_stop) {
      watchdog_cv.wait_for(lock, interval);
      if (watchdog_stop) break;
      st_watchdog_scans.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lanes_lock(lanes_mutex);
      for (LaneSlot& slot : lanes) {
        if (!slot.busy || slot.escalated || !slot.escalate_at.expired())
          continue;
        // Cooperative escalation: the solve unwinds at its next StopToken
        // poll and the lane reports kCancelled; the lane itself survives.
        slot.item_cancel.request_cancel();
        slot.escalated = true;
        st_watchdog_cancels.fetch_add(1, std::memory_order_relaxed);
      }
    }
  }

  // ---------------------------------------------------------------------
  // Event-loop internals (loop thread only).

  void set_interest(std::uint64_t id, Connection& c) {
    std::uint32_t want = EPOLLRDHUP;
    const bool paused =
        c.inflight >= options.per_client_inflight || c.want_close || draining;
    if (!paused) want |= EPOLLIN;
    if (c.outpos < c.outbuf.size()) want |= EPOLLOUT;
    if (want == c.events) return;
    epoll_event ev{};
    ev.events = want;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_MOD, c.fd, &ev) == 0) c.events = want;
  }

  void close_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second.fd, nullptr);
    ::close(it->second.fd);
    conns.erase(it);
    // Undelivered work for a dead client is wasted work: purge it.
    queue.drop_client(id);
    st_closed.fetch_add(1, std::memory_order_relaxed);
  }

  /// Flushes as much of outbuf as the socket accepts. Fatal errors mark
  /// the connection dead (reaped by finalize_conn).
  void flush_conn(Connection& c) {
    while (c.outpos < c.outbuf.size()) {
      const ssize_t n = chaos::chaos_send(c.fd, c.outbuf.data() + c.outpos,
                                          c.outbuf.size() - c.outpos,
                                          MSG_NOSIGNAL);
      if (n > 0) {
        c.outpos += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      c.dead = true;  // EPIPE, ECONNRESET, ...
      return;
    }
    if (c.outpos == c.outbuf.size() && c.outpos > 0) {
      c.outbuf.clear();
      c.outpos = 0;
    }
  }

  void send_frame(Connection& c, const std::string& encoded_frame) {
    if (c.dead) return;
    c.outbuf.append(encoded_frame);
    st_frames_out.fetch_add(1, std::memory_order_relaxed);
    flush_conn(c);
  }

  void send_response(Connection& c, const Response& r) {
    send_frame(c, encode_frame(r.to_json()));
  }

  /// Applies the close/interest policy after any mutation of `id`'s
  /// connection. Safe when the id is already gone.
  void finalize_conn(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Connection& c = it->second;
    if (c.dead || (c.want_close && c.outpos >= c.outbuf.size())) {
      close_conn(id);
      return;
    }
    set_interest(id, c);
  }

  void begin_drain() {
    if (draining) return;
    draining = true;
    if (listen_fd >= 0) {
      ::epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
      ::close(listen_fd);
      listen_fd = -1;
    }
    queue.close();  // workers exit once the backlog drains
    for (auto& [id, c] : conns) set_interest(id, c);
  }

  void accept_ready() {
    for (;;) {
      const int fd =
          ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) return;  // EAGAIN or transient accept failure
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      const std::uint64_t id = next_client_id++;
      auto [it, inserted] =
          conns.try_emplace(id, fd, options.max_frame_bytes);
      epoll_event ev{};
      ev.events = EPOLLIN | EPOLLRDHUP;
      ev.data.u64 = id;
      if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
        ::close(fd);
        conns.erase(it);
        continue;
      }
      it->second.events = ev.events;
      st_accepted.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void admit_route(Connection& c, std::uint64_t id, Request&& req) {
    if (draining) {
      send_response(c, make_error_response(req.id, ResponseStatus::kShuttingDown,
                                           "server is draining"));
      return;
    }
    const runtime::Deadline deadline = admission_deadline(req, options.service);
    const auto shared = std::make_shared<const Request>(std::move(req));
    const std::size_t count = shared->nets.size();
    // Solve mode splits the batch into per-net items so nets stream back
    // as they finish and the queue interleaves across clients; flow mode
    // is one item because the STA couples the batch.
    const std::size_t items =
        shared->mode == RouteMode::kFlow ? 1 : count;
    for (std::size_t k = 0; k < items; ++k) {
      WorkItem item;
      item.client = id;
      item.request = shared;
      item.net_index = shared->mode == RouteMode::kFlow ? kWholeBatch : k;
      item.deadline = deadline;
      FairQueue::Push pushed;
      try {
        pushed = queue.push(id, std::move(item));
      } catch (const runtime::NtrError& e) {
        // The kServeQueuePush fault site (or a real allocation failure)
        // at the admission boundary: refuse this item as overloaded --
        // the client's retry path handles it like a full queue.
        st_overloaded.fetch_add(1, std::memory_order_relaxed);
        Response r = make_error_response(shared->id,
                                         ResponseStatus::kOverloaded, e.what());
        if (shared->mode == RouteMode::kSolve) {
          r.net_index = k;
          r.net_count = count;
        }
        send_response(c, r);
        continue;
      }
      switch (pushed) {
        case FairQueue::Push::kOk:
          ++c.inflight;
          st_admitted.fetch_add(1, std::memory_order_relaxed);
          break;
        case FairQueue::Push::kFull: {
          st_overloaded.fetch_add(1, std::memory_order_relaxed);
          Response r = make_error_response(
              shared->id, ResponseStatus::kOverloaded, "request queue is full");
          if (shared->mode == RouteMode::kSolve) {
            // Per-net rejection: the client still receives exactly
            // `count` net-indexed frames for the batch.
            r.net_index = k;
            r.net_count = count;
          }
          send_response(c, r);
          break;
        }
        case FairQueue::Push::kClosed:
          send_response(c, make_error_response(shared->id,
                                               ResponseStatus::kShuttingDown,
                                               "server is draining"));
          break;
      }
    }
  }

  /// The `stats` wire document. Loop thread only (reads conns/draining).
  [[nodiscard]] Json stats_json() {
    const auto count = [](const std::atomic<std::uint64_t>& a) {
      return Json::number(
          static_cast<double>(a.load(std::memory_order_relaxed)));
    };
    Json doc = Json::object();
    doc.set("connections_accepted", count(st_accepted));
    doc.set("connections_closed", count(st_closed));
    doc.set("connections_open",
            Json::number(static_cast<double>(conns.size())));
    doc.set("frames_received", count(st_frames_in));
    doc.set("frames_sent", count(st_frames_out));
    doc.set("items_admitted", count(st_admitted));
    doc.set("rejected_overloaded", count(st_overloaded));
    doc.set("rejected_bad_request", count(st_bad_request));
    doc.set("protocol_errors", count(st_protocol_errors));
    doc.set("watchdog_scans", count(st_watchdog_scans));
    doc.set("watchdog_cancels", count(st_watchdog_cancels));
    doc.set("queue_depth", Json::number(static_cast<double>(queue.size())));
    doc.set("workers", Json::number(static_cast<double>(options.workers)));
    doc.set("draining", Json::boolean(draining));
    doc.set("uptime_s",
            Json::number(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - started)
                             .count()));
    return doc;
  }

  void handle_frame(Connection& c, std::uint64_t id, const std::string& payload) {
    runtime::StatusOr<Json> doc_or = Json::parse(payload);
    if (!doc_or.ok()) {
      st_bad_request.fetch_add(1, std::memory_order_relaxed);
      send_response(c, make_error_response(Json{}, ResponseStatus::kBadRequest,
                                           doc_or.status().to_string()));
      return;  // framing is intact; keep the connection
    }
    runtime::StatusOr<Request> req_or = parse_request(*doc_or);
    if (!req_or.ok()) {
      st_bad_request.fetch_add(1, std::memory_order_relaxed);
      const Json* rid = doc_or->find("id");
      send_response(c, make_error_response(rid != nullptr ? *rid : Json{},
                                           ResponseStatus::kBadRequest,
                                           req_or.status().to_string()));
      return;
    }
    Request req = *std::move(req_or);
    if (req.op == RequestOp::kPing) {
      Response pong;
      pong.id = req.id;
      pong.kind = ResponseKind::kPong;
      pong.status = ResponseStatus::kOk;
      pong.code = response_code(ResponseStatus::kOk);
      send_response(c, pong);
      return;
    }
    if (req.op == RequestOp::kStats) {
      Response r;
      r.id = req.id;
      r.kind = ResponseKind::kStats;
      r.status = ResponseStatus::kOk;
      r.code = response_code(ResponseStatus::kOk);
      r.stats = stats_json();
      send_response(c, r);
      return;
    }
    if (req.op == RequestOp::kShutdown) {
      Response ack;
      ack.id = req.id;
      ack.kind = ResponseKind::kShutdown;
      ack.status = ResponseStatus::kOk;
      ack.code = response_code(ResponseStatus::kOk);
      send_response(c, ack);
      begin_drain();
      return;
    }
    admit_route(c, id, std::move(req));
  }

  /// Drains complete frames from the decoder, respecting the per-client
  /// in-flight cap: while at the cap, buffered bytes simply wait (and
  /// set_interest stops reading more -- TCP backpressure).
  void process_frames(std::uint64_t id) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;
    Connection& c = it->second;
    std::string payload;
    while (!c.want_close && !c.dead &&
           c.inflight < options.per_client_inflight) {
      const FrameDecoder::Result res = c.decoder.next(payload);
      if (res == FrameDecoder::Result::kNeedMore) break;
      if (res == FrameDecoder::Result::kError) {
        // Hostile or corrupt header: no resync is trustworthy. Answer
        // with a typed error, then close once it flushes.
        st_protocol_errors.fetch_add(1, std::memory_order_relaxed);
        send_response(c, make_error_response(Json{}, ResponseStatus::kBadRequest,
                                             c.decoder.error().to_string()));
        c.want_close = true;
        break;
      }
      st_frames_in.fetch_add(1, std::memory_order_relaxed);
      handle_frame(c, id, payload);
    }
    finalize_conn(id);
  }

  void handle_conn_event(std::uint64_t id, std::uint32_t events) {
    const auto it = conns.find(id);
    if (it == conns.end()) return;  // closed earlier in this batch
    Connection& c = it->second;
    if ((events & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0) {
      // Mid-stream disconnect: drop the connection and purge its queued
      // work; in-flight completions will find no connection and vanish.
      close_conn(id);
      return;
    }
    if ((events & EPOLLOUT) != 0) flush_conn(c);
    if ((events & EPOLLIN) != 0) {
      std::array<char, 65536> buf;
      for (;;) {
        const ssize_t n = chaos::chaos_recv(c.fd, buf.data(), buf.size(), 0);
        if (n > 0) {
          c.decoder.feed(std::string_view(buf.data(), static_cast<std::size_t>(n)));
          continue;
        }
        if (n == 0) {  // orderly EOF
          c.dead = true;
          break;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        c.dead = true;
        break;
      }
    }
    if (c.dead && c.inflight == 0 && c.outpos >= c.outbuf.size()) {
      close_conn(id);
      return;
    }
    process_frames(id);
  }

  void deliver_completions() {
    std::vector<Completion> batch;
    {
      std::lock_guard<std::mutex> lock(completions_mutex);
      batch.swap(completions);
    }
    for (Completion& comp : batch) {
      const auto it = conns.find(comp.client);
      if (it == conns.end()) continue;  // client disconnected meanwhile
      Connection& c = it->second;
      if (c.inflight > 0) --c.inflight;
      for (const std::string& frame : comp.frames) send_frame(c, frame);
      // Dropping below the in-flight cap resumes this client's buffered
      // frames (and re-enables EPOLLIN via finalize).
      process_frames(comp.client);
    }
  }

  [[nodiscard]] bool drain_complete() {
    if (!draining || !workers_done.load(std::memory_order_acquire)) return false;
    {
      std::lock_guard<std::mutex> lock(completions_mutex);
      if (!completions.empty()) return false;
    }
    for (const auto& [id, c] : conns)
      if (c.outpos < c.outbuf.size() && !c.dead) return false;
    return true;
  }

  void event_loop() {
    std::array<epoll_event, 64> events;
    for (;;) {
      if (shutdown_requested.load(std::memory_order_acquire)) begin_drain();
      deliver_completions();
      if (drain_complete()) break;
      const int n = ::epoll_wait(  // fixed 64-slot buffer
          epoll_fd, events.data(),
          static_cast<int>(events.size()), -1);  // ntr-lint-allow(unchecked-narrowing)
      if (n < 0) {
        if (errno == EINTR) continue;
        break;  // unrecoverable epoll failure
      }
      for (int i = 0; i < n; ++i) {
        const std::uint64_t id = events[static_cast<std::size_t>(i)].data.u64;
        const std::uint32_t ev = events[static_cast<std::size_t>(i)].events;
        if (id == kListenId) {
          accept_ready();
        } else if (id == kWakeId) {
          std::uint64_t counter = 0;
          (void)!::read(wake_fd, &counter, sizeof counter);
        } else {
          handle_conn_event(id, ev);
        }
      }
    }
    // Teardown: every response a worker produced has been flushed (or its
    // client is gone); remaining connections are closed unceremoniously.
    while (!conns.empty()) close_conn(conns.begin()->first);
    loop_running.store(false, std::memory_order_release);
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() {
  if (impl_ == nullptr) return;
  // Prompt teardown: cancel in-flight solves, then drain.
  impl_->cancel_all();
  request_shutdown();
  wait();
  if (impl_->epoll_fd >= 0) ::close(impl_->epoll_fd);
  if (impl_->wake_fd >= 0) ::close(impl_->wake_fd);
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
}

Status Server::start() {
  Impl& s = *impl_;
  s.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (s.listen_fd < 0)
    return Status(StatusCode::kIoError, "socket: " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(s.options.port);
  if (::inet_pton(AF_INET, s.options.host.c_str(), &addr.sin_addr) != 1)
    return Status(StatusCode::kBadInput,
                  "unparseable host '" + s.options.host + "'");
  if (::bind(s.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return Status(StatusCode::kIoError,
                  "bind " + s.options.host + ":" + std::to_string(s.options.port) +
                      ": " + std::string(std::strerror(errno)));
  if (::listen(s.listen_fd, SOMAXCONN) != 0)
    return Status(StatusCode::kIoError,
                  "listen: " + std::string(std::strerror(errno)));

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return Status(StatusCode::kIoError,
                  "getsockname: " + std::string(std::strerror(errno)));
  s.bound_port = ntohs(bound.sin_port);

  s.wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (s.wake_fd < 0)
    return Status(StatusCode::kIoError,
                  "eventfd: " + std::string(std::strerror(errno)));
  s.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (s.epoll_fd < 0)
    return Status(StatusCode::kIoError,
                  "epoll_create1: " + std::string(std::strerror(errno)));

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenId;
  if (::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, s.listen_fd, &ev) != 0)
    return Status(StatusCode::kIoError,
                  "epoll_ctl(listen): " + std::string(std::strerror(errno)));
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  if (::epoll_ctl(s.epoll_fd, EPOLL_CTL_ADD, s.wake_fd, &ev) != 0)
    return Status(StatusCode::kIoError,
                  "epoll_ctl(wake): " + std::string(std::strerror(errno)));

  s.loop_running.store(true, std::memory_order_release);
  s.started = std::chrono::steady_clock::now();
  const std::size_t workers = s.options.workers == 0 ? 1 : s.options.workers;
  // ntr-unguarded-member-access(worker/watchdog threads not launched yet)
  s.lanes.assign(workers, Impl::LaneSlot{});
  s.pool = std::make_unique<core::ThreadPool>(workers);
  // The driver thread is the pool's lane 0; ThreadPool::run blocks it
  // until the queue closes and drains, making it the workers' joiner.
  s.driver_thread = std::thread([this] {
    try {
      impl_->pool->run([this](std::size_t lane) { impl_->worker_loop(lane); });
    } catch (const std::exception&) {
      // worker_loop is never-throw by construction; run() can still
      // surface e.g. resource exhaustion spawning lanes.
    }
    impl_->workers_done.store(true, std::memory_order_release);
    impl_->wake();
  });
  s.loop_thread = std::thread([this] { impl_->event_loop(); });
  if (s.options.watchdog_interval_ms > 0.0)
    s.watchdog_thread = std::thread([this] { impl_->watchdog_loop(); });
  return Status();
}

std::uint16_t Server::port() const { return impl_->bound_port; }

void Server::request_shutdown() {
  impl_->shutdown_requested.store(true, std::memory_order_release);
  impl_->wake();
}

void Server::wait() {
  // ntr-blocking-in-lane(shutdown join path; lanes reach it only via a wait() name collision)
  std::lock_guard<std::mutex> lock(impl_->join_mutex);
  if (impl_->loop_thread.joinable()) impl_->loop_thread.join();
  if (impl_->driver_thread.joinable()) impl_->driver_thread.join();
  {
    // ntr-blocking-in-lane(watchdog stop flag; lanes reach it only via a wait() name collision)
    std::lock_guard<std::mutex> watchdog_lock(impl_->watchdog_mutex);
    impl_->watchdog_stop = true;
  }
  impl_->watchdog_cv.notify_all();
  if (impl_->watchdog_thread.joinable()) impl_->watchdog_thread.join();
}

bool Server::running() const {
  return impl_->loop_running.load(std::memory_order_acquire);
}

ServerStats Server::stats() const {
  const Impl& s = *impl_;
  ServerStats out;
  out.connections_accepted = s.st_accepted.load(std::memory_order_relaxed);
  out.connections_closed = s.st_closed.load(std::memory_order_relaxed);
  out.frames_received = s.st_frames_in.load(std::memory_order_relaxed);
  out.items_admitted = s.st_admitted.load(std::memory_order_relaxed);
  out.frames_sent = s.st_frames_out.load(std::memory_order_relaxed);
  out.rejected_overloaded = s.st_overloaded.load(std::memory_order_relaxed);
  out.rejected_bad_request = s.st_bad_request.load(std::memory_order_relaxed);
  out.protocol_errors = s.st_protocol_errors.load(std::memory_order_relaxed);
  out.watchdog_scans = s.st_watchdog_scans.load(std::memory_order_relaxed);
  out.watchdog_cancels = s.st_watchdog_cancels.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ntr::serve
