#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "runtime/status.h"
#include "serve/chaos.h"

/// A deterministic chaos TCP proxy for ntr_serve (tools/ntr_chaosproxy).
///
/// The proxy sits between a loadgen and a server and replays a seeded
/// fault schedule on every byte it forwards: frames torn at arbitrary
/// boundaries, delayed and partial writes, slow-loris trickle streams,
/// and mid-request disconnects. Connection `k` uses chaos streams `2k`
/// (client -> upstream) and `2k+1` (upstream -> client), so the full
/// schedule is a pure function of (spec, connection order) -- the same
/// spec prints the same schedule_digest() on every run, which is the
/// reproduction recipe: rerun with the printed spec string.
///
/// Unlike the epoll server this is plain blocking threads -- two
/// forwarders per connection -- because the proxy exists to be slow and
/// rude, not fast.
namespace ntr::serve {

struct ChaosProxyOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral
  std::string upstream_host = "127.0.0.1";
  std::uint16_t upstream_port = 0;
  chaos::ChaosSpec spec;
};

struct ChaosProxyStats {
  std::uint64_t connections = 0;
  std::uint64_t bytes_forwarded = 0;
  std::uint64_t chunks_forwarded = 0;
  std::uint64_t injected_disconnects = 0;
  std::uint64_t injected_delays = 0;
  std::uint64_t trickle_streams = 0;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds and starts accepting. kIoError on socket failures.
  [[nodiscard]] runtime::Status start();

  /// The bound listen port (valid after start()).
  [[nodiscard]] std::uint16_t port() const;

  /// Stops accepting and tears down every live connection. Idempotent.
  void stop();

  /// Joins all proxy threads (implies stop()).
  void wait();

  [[nodiscard]] ChaosProxyStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ntr::serve
