#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/solver.h"
#include "runtime/status.h"
#include "serve/json.h"
#include "serve/protocol.h"

/// Blocking protocol client and the multi-client load generator behind
/// `ntr_loadgen`. Library code so tests can drive a Server in-process;
/// the tool is a thin flag parser.
namespace ntr::serve {

/// One blocking TCP connection speaking the framed JSON protocol.
class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  [[nodiscard]] runtime::Status connect(const std::string& host,
                                        std::uint16_t port);

  /// Frame-encodes and writes one request document.
  [[nodiscard]] runtime::Status send_document(const Json& doc);

  /// Writes raw bytes verbatim -- the hook tests use to send malformed
  /// frames and oversized headers.
  [[nodiscard]] runtime::Status send_bytes(std::string_view bytes);

  /// Blocks for the next response frame. kIoError on EOF/reset.
  [[nodiscard]] runtime::StatusOr<Response> read_response();

  /// Sends `req` and collects its complete response set: one frame for a
  /// ping/shutdown or request-level error; `nets` net-indexed frames for
  /// a solve batch; net frames plus a summary for a flow batch.
  [[nodiscard]] runtime::StatusOr<std::vector<Response>> call(const Request& req);

  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

 private:
  [[nodiscard]] runtime::Status read_exact(char* buf, std::size_t n);
  int fd_ = -1;
};

/// Given the frames already received for a request, decides whether the
/// response set is complete (the rule Client::call applies; exposed so
/// an open-loop reader can share it).
[[nodiscard]] bool response_set_complete(const std::vector<Response>& frames,
                                         RouteMode mode);

/// Client-side resilience: how hard a closed-loop client fights for each
/// request before giving up. With max_retries == 0 every failure is
/// terminal (the pre-chaos behavior).
struct RetryPolicy {
  /// Extra attempts per request after the first (covers reconnects after
  /// a mid-call drop and resends after `overloaded`/`shutting-down`).
  std::size_t max_retries = 0;
  double backoff_ms = 10.0;       ///< base backoff before attempt 1
  double backoff_max_ms = 1000.0; ///< exponential growth cap
};

/// The deterministic backoff before retry `attempt` (0-based): the base
/// doubled per attempt, capped, with seeded jitter in [1/2, 1) of the
/// step so a fleet of clients does not retry in lockstep. Pure function
/// of (policy, attempt, salt) -- chaos runs replay identical schedules.
[[nodiscard]] double backoff_delay_ms(const RetryPolicy& policy,
                                      std::size_t attempt, std::uint64_t salt);

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::size_t clients = 4;
  std::size_t requests_per_client = 8;
  std::size_t nets_per_request = 1;
  std::size_t pins = 12;           ///< pins per generated net
  std::uint64_t seed = 7;          ///< base seed; per-request seeds derive
  RouteMode mode = RouteMode::kSolve;
  core::Strategy strategy = core::Strategy::kLdrg;
  std::string evaluator = "graph-elmore";
  double deadline_ms = 0.0;        ///< per-request deadline (0 = server default)
  /// Every Nth request (1-based; 0 = never) carries a ~zero deadline so
  /// it exercises deadline-exceeded degradation.
  std::size_t timeout_every = 0;
  /// requests/s per client; 0 = closed loop (next send waits for the
  /// previous response set). Open loop pipelines sends on schedule and
  /// matches responses by id, which exercises server-side backpressure.
  double open_loop_rate = 0.0;
  /// Recompute every rung-0 routing locally and bit-compare against the
  /// server's (the bit-identity gate).
  bool verify = false;
  /// Closed-loop retry/reconnect policy (ignored by open-loop clients,
  /// whose pipelined sends cannot be replayed without duplicating ids).
  RetryPolicy retry{};
};

struct LoadgenReport {
  std::size_t requests_sent = 0;
  std::size_t response_sets = 0;   ///< requests fully answered
  std::size_t net_frames = 0;
  std::size_t ok = 0;              ///< rung-0 routings
  std::size_t degraded = 0;
  std::size_t quarantined = 0;
  std::size_t overloaded = 0;
  std::size_t errors = 0;          ///< other error frames
  std::size_t connect_failures = 0;     ///< failed connect attempts (all kinds)
  std::size_t connect_refused = 0;      ///< ... of which kUnavailable
  std::size_t connect_reset = 0;        ///< ... of which kConnectionReset
  std::size_t connect_timeout = 0;      ///< ... of which kTimeout
  std::size_t dropped_connections = 0;  ///< sockets that died mid-run
  std::size_t retries = 0;              ///< retry attempts (drops + refusals)
  std::size_t reconnects = 0;           ///< successful reconnections
  std::size_t unrecovered = 0;          ///< requests lost after all retries
  std::size_t verified = 0;
  std::size_t verify_mismatches = 0;
  double wall_s = 0.0;
  double throughput_rps = 0.0;     ///< completed requests per second
  double mean_ms = 0.0, p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0, max_ms = 0.0;
  std::vector<double> latencies_ms;  ///< per-request, unsorted

  /// BENCH_serve.json in the bench/ phase-report schema (plus a
  /// latency_ms block scripts/bench_compare.py gates).
  [[nodiscard]] std::string to_bench_json(const LoadgenOptions& options) const;
  /// One-paragraph human summary.
  [[nodiscard]] std::string summary() const;
};

/// Nearest-rank percentile (q in [0,1]) of an unsorted sample; 0 when
/// empty. Exposed for tests.
[[nodiscard]] double percentile(std::vector<double> sample, double q);

/// Runs the configured client fleet against host:port and aggregates.
[[nodiscard]] LoadgenReport run_loadgen(const LoadgenOptions& options);

}  // namespace ntr::serve
