#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "runtime/status.h"

/// Length-prefixed framing for the ntr_serve TCP protocol.
///
/// Every message -- request or response -- travels as one frame:
///
///   [ 4-byte big-endian payload length | payload bytes (JSON) ]
///
/// The length counts payload bytes only. A declared length of zero or one
/// above the receiver's cap poisons the stream (there is no way to trust
/// a resync after a hostile or corrupted header), so the decoder latches
/// the error and the server closes the connection after sending a typed
/// error response.
namespace ntr::serve {

inline constexpr std::size_t kFrameHeaderBytes = 4;
/// Default per-frame payload cap. Large enough for a multi-thousand-pin
/// batch, small enough that one client cannot balloon the server's
/// buffers.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;

/// Wraps `payload` in a frame header.
[[nodiscard]] std::string encode_frame(std::string_view payload);

/// Incremental frame reassembly over an arbitrary byte stream: feed()
/// whatever recv() produced, then drain complete frames with next().
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes)
      : max_frame_bytes_(max_frame_bytes) {}

  /// Appends raw bytes from the stream. No-op once the stream is poisoned.
  void feed(std::string_view bytes);

  enum class Result {
    kFrame,     ///< `payload` holds the next complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< stream poisoned; see error()
  };

  /// Extracts the next complete frame payload, if any.
  Result next(std::string& payload);

  /// The latched kBadInput once a header was rejected; ok before that.
  [[nodiscard]] const runtime::Status& error() const { return error_; }

  /// Bytes currently buffered but not yet returned (partial frames).
  [[nodiscard]] std::size_t buffered_bytes() const { return buf_.size() - pos_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buf_;
  std::size_t pos_ = 0;  ///< consumed prefix of buf_
  runtime::Status error_;
};

}  // namespace ntr::serve
