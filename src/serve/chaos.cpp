#include "serve/chaos.h"

#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace ntr::serve::chaos {

using runtime::Status;
using runtime::StatusCode;

// ---------------------------------------------------------------------------
// Spec.

std::string ChaosSpec::to_string() const {
  std::ostringstream out;
  out << "seed=" << seed;
  const auto knob = [&out](const char* name, double v) {
    if (v > 0.0) out << ',' << name << '=' << v;
  };
  knob("tear", tear);
  if (tear > 0.0) out << ",tear-chunk=" << tear_chunk;
  knob("delay", delay);
  if (delay > 0.0) out << ",delay-ms=" << delay_ms;
  knob("trickle", trickle);
  if (trickle > 0.0) out << ",trickle-bytes=" << trickle_bytes;
  knob("disconnect", disconnect);
  knob("eintr", eintr);
  return out.str();
}

runtime::StatusOr<ChaosSpec> ChaosSpec::parse(std::string_view text) {
  ChaosSpec spec;
  std::stringstream stream{std::string(text)};
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos)
      return Status(StatusCode::kBadInput,
                    "chaos spec: entry '" + entry + "' is not key=value");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    char* end = nullptr;
    const double num = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
      return Status(StatusCode::kBadInput,
                    "chaos spec: '" + key + "' has a malformed value '" +
                        value + "'");
    const auto probability = [&](double& out) -> Status {
      if (num < 0.0 || num > 1.0)
        return Status(StatusCode::kBadInput,
                      "chaos spec: '" + key + "' must be in [0,1]");
      out = num;
      return Status();
    };
    const auto count = [&](std::size_t& out) -> Status {
      if (num < 1.0)
        return Status(StatusCode::kBadInput,
                      "chaos spec: '" + key + "' must be >= 1");
      out = static_cast<std::size_t>(num);
      return Status();
    };
    Status s;
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(num);
    } else if (key == "tear") {
      s = probability(spec.tear);
    } else if (key == "tear-chunk") {
      s = count(spec.tear_chunk);
    } else if (key == "delay") {
      s = probability(spec.delay);
    } else if (key == "delay-ms") {
      if (num < 0.0)
        s = Status(StatusCode::kBadInput, "chaos spec: delay-ms must be >= 0");
      else
        spec.delay_ms = num;
    } else if (key == "trickle") {
      s = probability(spec.trickle);
    } else if (key == "trickle-bytes") {
      s = count(spec.trickle_bytes);
    } else if (key == "disconnect") {
      s = probability(spec.disconnect);
    } else if (key == "eintr") {
      s = probability(spec.eintr);
    } else {
      s = Status(StatusCode::kBadInput,
                 "chaos spec: unknown knob '" + key + "'");
    }
    if (!s.ok()) return s;
  }
  return spec;
}

// ---------------------------------------------------------------------------
// RNG.

std::uint64_t ChaosRng::next_u64() {
  // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, two lines.
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double ChaosRng::next_unit() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool ChaosRng::chance(double p) {
  if (p <= 0.0) return false;
  return next_unit() < p;
}

std::size_t ChaosRng::below(std::size_t n) {
  return n <= 1 ? 0 : static_cast<std::size_t>(next_u64() % n);
}

// ---------------------------------------------------------------------------
// Stream.

namespace {

/// Distinct streams from one seed: mix the stream id into the seed so
/// neighboring ids do not produce correlated SplitMix64 sequences.
std::uint64_t stream_seed(std::uint64_t seed, std::uint64_t stream_id) {
  std::uint64_t z = seed ^ (0x6C62272E07BB0142ULL * (stream_id + 1));
  z ^= z >> 33;
  z *= 0xFF51AFD7ED558CCDULL;
  z ^= z >> 33;
  return z;
}

}  // namespace

ChaosStream::ChaosStream(const ChaosSpec& spec, std::uint64_t stream_id)
    : spec_(spec), rng_(stream_seed(spec.seed, stream_id)) {
  trickling_ = rng_.chance(spec_.trickle);
}

ChaosOp ChaosStream::plan(std::size_t available) {
  ChaosOp op;
  if (rng_.chance(spec_.disconnect)) {
    op.disconnect = true;
    return op;
  }
  if (rng_.chance(spec_.delay)) op.delay_ms = rng_.next_unit() * spec_.delay_ms;
  op.bytes = available;
  if (trickling_) {
    op.bytes = std::min(op.bytes, spec_.trickle_bytes);
  } else if (rng_.chance(spec_.tear)) {
    op.bytes = std::min(op.bytes, 1 + rng_.below(spec_.tear_chunk));
  }
  return op;
}

std::string schedule_digest(const ChaosSpec& spec, std::size_t streams,
                            std::size_t ops) {
  std::uint64_t hash = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  const auto mix = [&hash](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (v >> (8 * i)) & 0xFF;
      hash *= 0x100000001B3ULL;
    }
  };
  for (std::uint64_t sid = 0; sid < streams; ++sid) {
    ChaosStream stream(spec, sid);
    mix(stream.trickling() ? 1 : 0);
    for (std::size_t k = 0; k < ops; ++k) {
      const ChaosOp op = stream.plan(64 * 1024);
      mix(op.disconnect ? 1 : 0);
      mix(static_cast<std::uint64_t>(op.delay_ms * 1e6));
      mix(op.bytes);
    }
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf);
}

// ---------------------------------------------------------------------------
// Process-wide syscall chaos.

namespace {

ChaosSpec load_env_spec() {
  const char* env = std::getenv("NTR_CHAOS_SPEC");
  if (env == nullptr || *env == '\0') return ChaosSpec{};
  runtime::StatusOr<ChaosSpec> spec = ChaosSpec::parse(env);
  if (!spec.ok()) {
    std::fprintf(stderr, "ntr chaos: ignoring NTR_CHAOS_SPEC: %s\n",
                 spec.status().to_string().c_str());
    return ChaosSpec{};
  }
  return *spec;
}

struct ProcessChaos {
  ChaosSpec env_spec = load_env_spec();
  const ChaosSpec* override_spec = nullptr;
  /// Fast-path gate for the syscall wrappers.
  std::atomic<bool> eintr_armed{env_spec.eintr > 0.0};
  /// Deterministic across the process: each wrapped call consumes one
  /// counter slot, hashed with the seed. (The interleaving of threads
  /// onto slots varies, but the injected-EINTR *rate* and the stream of
  /// decisions per slot are seed-reproducible.)
  std::atomic<std::uint64_t> counter{0};
  std::atomic<std::uint64_t> injected{0};

  [[nodiscard]] const ChaosSpec& active() const {
    return override_spec != nullptr ? *override_spec : env_spec;
  }
};

ProcessChaos& process_chaos() {
  static ProcessChaos chaos;
  return chaos;
}

/// One EINTR decision: hash the call index with the seed.
bool should_inject_eintr() {
  ProcessChaos& chaos = process_chaos();
  if (!chaos.eintr_armed.load(std::memory_order_relaxed)) return false;
  const ChaosSpec& spec = chaos.active();
  const std::uint64_t slot =
      chaos.counter.fetch_add(1, std::memory_order_relaxed);
  ChaosRng rng(stream_seed(spec.seed ^ 0xE1217ULL, slot));
  if (!rng.chance(spec.eintr)) return false;
  chaos.injected.fetch_add(1, std::memory_order_relaxed);
  return true;
}

}  // namespace

const ChaosSpec& process_spec() { return process_chaos().active(); }

void set_process_spec_for_test(const ChaosSpec* spec) {
  ProcessChaos& chaos = process_chaos();
  chaos.override_spec = spec;
  chaos.eintr_armed.store(chaos.active().eintr > 0.0,
                          std::memory_order_relaxed);
}

long chaos_send(int fd, const void* buf, std::size_t n, int flags) {
  if (should_inject_eintr()) {
    errno = EINTR;
    return -1;
  }
  return ::send(fd, buf, n, flags);
}

long chaos_recv(int fd, void* buf, std::size_t n, int flags) {
  if (should_inject_eintr()) {
    errno = EINTR;
    return -1;
  }
  return ::recv(fd, buf, n, flags);
}

std::uint64_t injected_eintr_count() {
  return process_chaos().injected.load(std::memory_order_relaxed);
}

}  // namespace ntr::serve::chaos
