#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "runtime/status.h"

/// Deterministic, seeded network-fault injection for the serving stack.
///
/// The solver tree injects faults with NTR_FAULT_POINT sites; the wire
/// needs a different shape of chaos -- torn frames, trickled bytes,
/// delayed and partial writes, mid-request disconnects, EINTR storms --
/// and it needs the same discipline: every decision derives from one
/// seed, so a failing run is reproducible from its spec string alone.
///
/// A ChaosSpec is parsed from `NTR_CHAOS_SPEC` (or `--spec`):
///
///   seed=42,tear=0.5,tear-chunk=9,delay=0.2,delay-ms=2,trickle=0.25,
///   trickle-bytes=1,disconnect=0.02,eintr=0.3
///
/// All probabilities live in [0,1]; omitted knobs default to "off".
/// Consumers:
///
///  - ChaosStream: one seeded decision stream per connection direction.
///    The chaos proxy (serve/chaosproxy.h) drives one per direction; the
///    schedule of stream N is a pure function of (spec, N), which is
///    what schedule_digest() certifies across runs.
///  - chaos_send/chaos_recv: drop-in socket-call wrappers that inject
///    EINTR returns with probability `eintr` before performing the real
///    call. Gated on the process spec: one relaxed atomic load when
///    NTR_CHAOS_SPEC is unset, so production paths pay nothing.
namespace ntr::serve::chaos {

struct ChaosSpec {
  std::uint64_t seed = 0;
  /// P(a forwarded chunk is torn at a random boundary <= tear_chunk).
  double tear = 0.0;
  std::size_t tear_chunk = 16;
  /// P(sleep up to delay_ms before forwarding a chunk) -- slow writes.
  double delay = 0.0;
  double delay_ms = 2.0;
  /// P(a whole connection direction trickles trickle_bytes at a time) --
  /// the slow-loris read/write pattern. Decided once per stream.
  double trickle = 0.0;
  std::size_t trickle_bytes = 1;
  /// P(the connection is killed before a chunk) -- mid-request drops.
  double disconnect = 0.0;
  /// P(a wrapped socket call returns EINTR instead of running).
  double eintr = 0.0;

  /// True when any knob can fire.
  [[nodiscard]] bool enabled() const {
    return tear > 0.0 || delay > 0.0 || trickle > 0.0 || disconnect > 0.0 ||
           eintr > 0.0;
  }

  /// Canonical spec string (parse(to_string()) round-trips).
  [[nodiscard]] std::string to_string() const;

  /// Parses "key=value,..." -- kBadInput on unknown keys, malformed
  /// numbers, or probabilities outside [0,1]. The empty string is a
  /// valid, fully-disabled spec.
  [[nodiscard]] static runtime::StatusOr<ChaosSpec> parse(std::string_view text);
};

/// SplitMix64: tiny, seedable, and plenty for fault scheduling.
class ChaosRng {
 public:
  explicit ChaosRng(std::uint64_t seed) : state_(seed) {}

  [[nodiscard]] std::uint64_t next_u64();
  /// Uniform in [0,1).
  [[nodiscard]] double next_unit();
  /// True with probability p (deterministically consumes one draw iff
  /// p > 0, so disabled knobs do not shift the schedule).
  [[nodiscard]] bool chance(double p);
  /// Uniform in [0, n); n must be >= 1.
  [[nodiscard]] std::size_t below(std::size_t n);

 private:
  std::uint64_t state_;
};

/// What a ChaosStream decided to do with the next stretch of bytes.
struct ChaosOp {
  /// Kill the connection before forwarding anything.
  bool disconnect = false;
  /// Sleep this long before forwarding (0 = no delay).
  double delay_ms = 0.0;
  /// Forward at most this many bytes as one write.
  std::size_t bytes = 0;
};

/// The seeded per-connection-direction decision stream. Deterministic:
/// the same (spec, stream_id) and the same sequence of plan() sizes
/// yield the same ops on every run.
class ChaosStream {
 public:
  ChaosStream(const ChaosSpec& spec, std::uint64_t stream_id);

  /// Plans the next op for `available` pending bytes (>= 1).
  [[nodiscard]] ChaosOp plan(std::size_t available);

  /// True when this stream drew the slow-loris trickle mode.
  [[nodiscard]] bool trickling() const { return trickling_; }

 private:
  ChaosSpec spec_;
  ChaosRng rng_;
  bool trickling_ = false;
};

/// FNV-1a digest of the first `streams` decision streams, `ops` ops
/// each, planned over fixed 64 KiB chunks: a pure function of the spec.
/// Two runs of the same spec must print the same digest -- this is the
/// reproducibility certificate scripts/chaos_smoke.sh compares.
[[nodiscard]] std::string schedule_digest(const ChaosSpec& spec,
                                          std::size_t streams = 16,
                                          std::size_t ops = 64);

// ---------------------------------------------------------------------------
// Process-wide syscall chaos (the EINTR storm knob).

/// The spec parsed from NTR_CHAOS_SPEC, once, lazily. A malformed env
/// spec is reported on stderr and treated as disabled.
[[nodiscard]] const ChaosSpec& process_spec();

/// Test hook: replaces the process spec (nullptr restores the
/// environment-derived one). Not thread-safe against concurrent
/// chaos_send/chaos_recv callers; tests install it before serving.
void set_process_spec_for_test(const ChaosSpec* spec);

/// ::send / ::recv with deterministic, seeded EINTR injection in front.
/// With the process spec disabled these are the plain syscalls plus one
/// relaxed atomic load.
[[nodiscard]] long chaos_send(int fd, const void* buf, std::size_t n, int flags);
[[nodiscard]] long chaos_recv(int fd, void* buf, std::size_t n, int flags);

/// How many EINTRs were injected process-wide (tests assert > 0).
[[nodiscard]] std::uint64_t injected_eintr_count();

}  // namespace ntr::serve::chaos
