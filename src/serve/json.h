#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "runtime/status.h"

/// Minimal JSON document model for the ntr_serve wire protocol.
///
/// Hand-rolled on purpose (the repo takes no new dependencies): a small
/// tagged value type, a strict recursive-descent parser, and a compact
/// serializer. The parser rejects non-finite numbers outright -- NaN/inf
/// can never enter the service through a JSON payload -- and bounds both
/// nesting depth and input size at the frame layer (serve/wire.h).
namespace ntr::serve {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  /// Object members keep insertion order so serialized responses have a
  /// stable, documented key order (and tests can golden-match them).
  using Member = std::pair<std::string, Json>;

  Json() = default;  ///< null

  [[nodiscard]] static Json boolean(bool v);
  [[nodiscard]] static Json number(double v);
  [[nodiscard]] static Json string(std::string v);
  [[nodiscard]] static Json array(std::vector<Json> items = {});
  [[nodiscard]] static Json object(std::vector<Member> members = {});

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Kind-checked accessors; throw runtime::NtrError(kBadInput) on a kind
  /// mismatch so a protocol handler that forgot an is_* guard fails typed.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<Json>& items() const;
  [[nodiscard]] const std::vector<Member>& members() const;

  /// First member with this key, or nullptr (objects only; nullptr for
  /// every other kind, so lookups compose without kind checks).
  [[nodiscard]] const Json* find(std::string_view key) const;

  /// Builder helpers: append to an array / object in place.
  void push_back(Json v);
  void set(std::string key, Json v);

  /// Compact serialization (no whitespace, insertion-ordered members,
  /// integral numbers without a fraction part).
  [[nodiscard]] std::string dump() const;

  /// Strict parse of one JSON document (trailing garbage is an error).
  /// kBadInput on malformed text, non-finite numbers, or nesting deeper
  /// than an internal cap.
  [[nodiscard]] static runtime::StatusOr<Json> parse(std::string_view text);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

/// Escapes `s` as the *contents* of a JSON string literal (no quotes).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace ntr::serve
