#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "core/annotations.h"
#include "serve/service.h"

/// The bounded, client-fair request queue between the event loop and the
/// worker lanes.
///
/// Two properties matter under load:
///
///  - **Backpressure**: total capacity is bounded. When the queue is
///    full, push() refuses and the server answers `overloaded`
///    immediately instead of buffering without limit -- the admission
///    half of the QoS policy (the other half is the per-request deadline,
///    which keeps ticking while an item waits here, so saturated queues
///    degrade work instead of serving stale results).
///
///  - **Per-client fairness**: items are kept in per-client FIFOs and
///    dispatched round-robin across clients, so one client streaming a
///    thousand-net batch cannot starve another client's single net. The
///    per-client order is preserved; only the interleaving is fair.
namespace ntr::serve {

class FairQueue {
 public:
  /// `capacity` bounds the total queued items (>= 1).
  explicit FairQueue(std::size_t capacity);

  enum class Push : std::uint8_t {
    kOk,      ///< admitted
    kFull,    ///< capacity reached; caller answers `overloaded`
    kClosed,  ///< draining; caller answers `shutting-down`
  };

  /// Enqueues `item` for `client`. Never blocks.
  Push push(std::uint64_t client, WorkItem item);

  /// Blocks until an item is available or the queue is closed *and*
  /// drained; nullopt means "no more work ever" (worker exits). Items are
  /// delivered round-robin across clients, FIFO within a client.
  std::optional<WorkItem> pop();

  /// Stops admission; queued items still drain through pop(). Idempotent.
  void close();

  /// Drops every queued item of `client` (its connection died). Items
  /// already popped by a worker are the server's problem, not ours.
  void drop_client(std::uint64_t client);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool closed() const;

 private:
  struct ClientQueue {
    std::uint64_t client = 0;
    std::deque<WorkItem> items;
  };

  /// Index into queues_ for `client`, or queues_.size().
  [[nodiscard]] std::size_t find_client(std::uint64_t client) const;

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  /// Per-client FIFOs in round-robin order: pop() serves queues_[rr_]
  /// and advances. Empty client queues are removed eagerly, so every
  /// entry here holds at least one item.
  std::vector<ClientQueue> queues_ NTR_GUARDED_BY(mutex_);
  std::size_t rr_ NTR_GUARDED_BY(mutex_) = 0;
  std::size_t total_ NTR_GUARDED_BY(mutex_) = 0;
  bool closed_ NTR_GUARDED_BY(mutex_) = false;
};

}  // namespace ntr::serve
