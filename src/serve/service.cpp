#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <string>
#include <thread>
#include <utility>

#include "check/faultinject.h"
#include "core/resilience.h"
#include "core/solver.h"
#include "delay/evaluator.h"
#include "flow/timing_flow.h"
#include "graph/net.h"
#include "graph/routing_graph.h"
#include "io/net_io.h"
#include "runtime/status.h"
#include "sta/timing_graph.h"

namespace ntr::serve {

using runtime::Status;
using runtime::StatusCode;

runtime::Deadline admission_deadline(const Request& request,
                                     const ServiceConfig& config) {
  double ms = request.deadline_ms > 0.0 ? request.deadline_ms
                                        : config.default_deadline_ms;
  if (config.max_deadline_ms > 0.0)
    ms = ms > 0.0 ? std::min(ms, config.max_deadline_ms)
                  : config.max_deadline_ms;
  if (ms <= 0.0) return runtime::Deadline{};  // unbounded
  return runtime::Deadline::after_ms(ms);
}

namespace {

/// Fills the measurement fields of a kNet response from a shipped
/// routing, mirroring ntr_route's reporting: a degraded routing came from
/// the Elmore rungs, so re-measuring it with the primary (transient)
/// evaluator could just re-hit the failure that forced the fallback --
/// report with the rung's model instead.
void report_routing(Response& r, const graph::RoutingGraph& routing,
                    const delay::DelayEvaluator& primary,
                    const ServiceConfig& config, bool degraded) {
  r.routing = io::write_routing(routing);
  r.wirelength_um = routing.total_wirelength();
  const delay::GraphElmoreEvaluator elmore(config.tech);
  const delay::DelayEvaluator& reporter =
      degraded ? static_cast<const delay::DelayEvaluator&>(elmore) : primary;
  try {
    r.delays_s = reporter.sink_delays(routing);
    r.evaluator = reporter.name();
  } catch (const std::exception&) {
    // The primary measurement failed post-solve (e.g. the budget ran out
    // between the solve and the report): fall back to the cheap model.
    r.delays_s = elmore.sink_delays(routing);
    r.evaluator = elmore.name();
  }
  r.max_delay_s = 0.0;
  for (const double d : r.delays_s) r.max_delay_s = std::max(r.max_delay_s, d);
}

/// Per-net failure fields from a resilient outcome whose net shipped no
/// routing. The code mirrors the CLI: a skip-policy drop is the requested
/// behavior (0); fail surfaces the typed failure; a degrade-policy
/// quarantine is the numerical bucket.
void report_quarantine(Response& r, const core::NetOutcome& outcome,
                       core::OnError policy) {
  r.error = outcome.status.to_string();
  r.rung = outcome.rung;
  if (policy == core::OnError::kSkip) {
    r.status = ResponseStatus::kQuarantined;
    r.code = response_code(ResponseStatus::kOk);
  } else if (policy == core::OnError::kFail) {
    r.status = status_from_error(outcome.status);
    r.code = response_code(r.status);
  } else {
    r.status = ResponseStatus::kQuarantined;
    r.code = response_code(ResponseStatus::kQuarantined);
  }
}

}  // namespace

Response route_net(const Request& request, std::size_t net_index,
                   const ServiceConfig& config,
                   const runtime::StopToken& stop) {
  Response r;
  r.id = request.id;
  r.kind = ResponseKind::kNet;
  r.net_index = net_index;
  r.net_count = request.nets.size();

  // Defense in depth: today every caller derives net_index from the
  // request's own net list, but this is the serve layer's public API and
  // an out-of-range index must fail the item, not the process.
  if (net_index >= request.nets.size()) {
    r.status = ResponseStatus::kBadRequest;
    r.code = response_code(r.status);
    r.error = "net index " + std::to_string(net_index) + " out of range";
    return r;
  }

  const runtime::StatusOr<graph::Net> net_or =
      io::try_read_net(request.nets[net_index]);
  if (!net_or.ok()) {
    r.status = ResponseStatus::kBadInput;
    r.code = response_code(r.status);
    r.error = net_or.status().to_string();
    return r;
  }

  const std::unique_ptr<delay::DelayEvaluator> evaluator =
      delay::make_evaluator(request.evaluator, config.tech, stop);
  if (evaluator == nullptr) {  // unreachable: names validated at parse
    r.status = ResponseStatus::kBadRequest;
    r.code = response_code(r.status);
    r.error = "unknown evaluator '" + request.evaluator + "'";
    return r;
  }

  core::SolverConfig solver;
  solver.tech = config.tech;
  solver.ldrg.max_added_edges = request.max_edges;
  solver.parallel = config.parallel;
  core::ResilienceOptions resilience;
  resilience.on_error = request.on_error;
  resilience.stop = stop;
  const core::GuardedSolution guarded = core::solve_resilient(
      *net_or, request.strategy, *evaluator, solver, resilience);

  if (!guarded.solution) {
    report_quarantine(r, guarded.outcome, request.on_error);
    return r;
  }
  r.status = status_from_outcome(guarded.outcome);
  r.code = response_code(r.status);
  r.rung = guarded.outcome.rung;
  if (!guarded.outcome.status.ok()) r.error = guarded.outcome.status.to_string();
  report_routing(r, guarded.solution->graph, *evaluator, config,
                 guarded.outcome.disposition != core::NetDisposition::kOk);
  return r;
}

std::vector<Response> route_flow(const Request& request,
                                 const ServiceConfig& config,
                                 const runtime::StopToken& stop) {
  const std::size_t count = request.nets.size();

  // The STA design couples the batch, so a net that fails the io
  // validators fails the whole request -- unlike solve mode, where nets
  // are independent and fail independently.
  std::vector<graph::Net> nets;
  nets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    runtime::StatusOr<graph::Net> net_or = io::try_read_net(request.nets[i]);
    if (!net_or.ok()) {
      Response r = make_error_response(
          request.id, ResponseStatus::kBadInput,
          "net " + std::to_string(i) + ": " + net_or.status().to_string());
      return {std::move(r)};
    }
    nets.push_back(*std::move(net_or));
  }

  // Synthetic design: per net, a zero-delay driver reading a primary
  // input and one zero-delay receiver per sink driving a primary output.
  // Gate delays are uniform, so slacks are driven purely by the
  // interconnect delays the flow annotates.
  sta::TimingGraph design;
  std::vector<flow::BoundNet> bound(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::string tag = std::to_string(i);
    const sta::NetId pi = design.add_net("pi" + tag);
    const sta::NetId sig = design.add_net("sig" + tag);
    design.add_gate("drv" + tag, 0.0, {pi}, sig);
    bound[i].name = "net" + tag;
    bound[i].net = nets[i];
    bound[i].sta_net = sig;
    const std::size_t sinks = nets[i].sink_count();
    bound[i].sink_gates.reserve(sinks);
    for (std::size_t j = 0; j < sinks; ++j) {
      const sta::NetId po = design.add_net("po" + tag + "_" + std::to_string(j));
      bound[i].sink_gates.push_back(
          design.add_gate("rx" + tag + "_" + std::to_string(j), 0.0, {sig}, po));
    }
  }

  const std::unique_ptr<delay::DelayEvaluator> evaluator =
      delay::make_evaluator(request.evaluator, config.tech, stop);
  if (evaluator == nullptr) {
    return {make_error_response(request.id, ResponseStatus::kBadRequest,
                                "unknown evaluator '" + request.evaluator + "'")};
  }

  flow::FlowOptions options;
  options.tech = config.tech;
  options.clock_period_s = request.clock_period_s;
  options.ldrg.max_added_edges = request.max_edges;
  options.parallel = config.parallel;
  options.resilience.on_error = request.on_error;
  options.resilience.stop = stop;

  flow::FlowResult result;
  try {
    result = flow::run_timing_flow(design, bound, *evaluator, options);
  } catch (const std::exception& e) {
    // OnError::kFail rethrows the first per-net failure; binding bugs
    // surface as kBadInput. Either way the batch yields one error frame.
    const Status status = runtime::exception_to_status(e);
    return {make_error_response(request.id, status_from_error(status),
                                status.to_string())};
  }

  std::vector<Response> frames;
  frames.reserve(count + 1);
  for (std::size_t i = 0; i < count; ++i) {
    Response r;
    r.id = request.id;
    r.kind = ResponseKind::kNet;
    r.net_index = i;
    r.net_count = count;
    const core::NetOutcome& outcome = result.outcomes[i];
    r.status = status_from_outcome(outcome);
    r.code = response_code(r.status);
    r.rung = outcome.rung;
    if (!outcome.status.ok()) r.error = outcome.status.to_string();
    report_routing(r, result.routings[i], *evaluator, config,
                   outcome.disposition != core::NetDisposition::kOk);
    frames.push_back(std::move(r));
  }

  Response summary;
  summary.id = request.id;
  summary.kind = ResponseKind::kSummary;
  summary.status = ResponseStatus::kOk;
  summary.code = response_code(ResponseStatus::kOk);
  summary.net_count = count;
  summary.iterations = result.iterations;
  summary.nets_rerouted = result.nets_rerouted;
  summary.initial_worst_slack_s = result.initial_report.worst_slack_s;
  summary.worst_slack_s = result.final_report.worst_slack_s;
  frames.push_back(std::move(summary));
  return frames;
}

std::vector<Response> execute_work_item(const WorkItem& item,
                                        const ServiceConfig& config,
                                        const runtime::CancelToken& cancel) {
  runtime::StopToken stop;
  stop.deadline = item.deadline;
  stop.cancel = cancel;
  const Request& request = *item.request;
  try {
    NTR_FAULT_POINT(kServeWorkerDispatch);
    if (request.debug_wedge_ms > 0.0) {
      if (!config.enable_test_hooks)
        return {make_error_response(request.id, ResponseStatus::kBadRequest,
                                    "debug_wedge_ms requires --enable-test-hooks")};
      // The deliberately wedged lane: spin past the deadline, honoring
      // only cancel -- exactly the stuck worker the watchdog exists for.
      const auto until =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(request.debug_wedge_ms));
      while (std::chrono::steady_clock::now() < until) {
        if (cancel.cancelled())
          return {make_error_response(request.id, ResponseStatus::kCancelled,
                                      "wedged worker cancelled")};
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    if (item.net_index == kWholeBatch)
      return route_flow(request, config, stop);
    return {route_net(request, item.net_index, config, stop)};
  } catch (const std::exception& e) {
    // route_net / route_flow are never-throws by contract; this is the
    // belt-and-suspenders boundary that keeps a worker lane alive.
    const Status status = runtime::exception_to_status(e);
    return {make_error_response(request.id, ResponseStatus::kInternal,
                                status.to_string())};
  }
}

}  // namespace ntr::serve
