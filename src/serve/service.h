#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/parallel.h"
#include "runtime/stop.h"
#include "serve/protocol.h"
#include "spice/technology.h"

/// The request handler: everything between a parsed Request and the
/// Response frames, independent of sockets so tests can drive it
/// directly.
///
/// Re-entrancy contract: handlers hold **no shared mutable state** -- the
/// evaluator, solver config, and synthetic STA design are constructed per
/// request, so any number of worker lanes may execute items concurrently
/// and a given request's routing is bit-identical no matter which lane
/// (or how loaded a server) produced it. `ntr_analyze --only
/// global-mutable-state --entry execute_work_item` certifies this in CI.
namespace ntr::serve {

struct ServiceConfig {
  spice::Technology tech = spice::kTable1Technology;
  /// Applied when a request carries no deadline_ms. 0 = unbounded.
  double default_deadline_ms = 0.0;
  /// Hard per-request cap (a client cannot buy more than this). 0 = no cap.
  double max_deadline_ms = 0.0;
  /// Solver lanes *inside* one request's solve. Default serial: the
  /// service's parallelism is across requests (worker lanes), and nested
  /// pools would oversubscribe the host.
  core::ParallelConfig parallel{};
  /// Honors Request::debug_wedge_ms (a deliberately wedged lane for the
  /// watchdog tests). Off by default; requests carrying the field are
  /// rejected as kBadRequest so production servers cannot be wedged.
  bool enable_test_hooks = false;
};

/// net_index value marking a flow-mode item that carries its whole batch.
inline constexpr std::size_t kWholeBatch = static_cast<std::size_t>(-1);

/// One unit of queued work: a solve-mode item routes nets[net_index] of
/// its request; a flow-mode item (net_index == kWholeBatch) runs the
/// whole batch through flow::run_timing_flow. The request is shared, not
/// copied, across a batch's items; the deadline is fixed at admission so
/// queueing delay spends the budget.
struct WorkItem {
  std::uint64_t client = 0;
  std::shared_ptr<const Request> request;
  std::size_t net_index = 0;
  runtime::Deadline deadline{};
};

/// The admission-time deadline for a request under this config: the
/// request's deadline_ms (clamped to max_deadline_ms) or the default;
/// unbounded when both are 0.
[[nodiscard]] runtime::Deadline admission_deadline(const Request& request,
                                                   const ServiceConfig& config);

/// Routes one net of a solve-mode request through the degradation ladder
/// (core::solve_resilient) and reports it exactly like `ntr_route`:
/// routing text, per-sink delays measured with the rung-appropriate
/// evaluator, wirelength. Never throws.
[[nodiscard]] Response route_net(const Request& request, std::size_t net_index,
                                 const ServiceConfig& config,
                                 const runtime::StopToken& stop);

/// Runs a flow-mode batch through flow::run_timing_flow on a synthetic
/// one-driver-per-net STA design: per-net frames (ladder outcomes
/// included) followed by one summary frame with the timing report.
/// Never throws.
[[nodiscard]] std::vector<Response> route_flow(const Request& request,
                                               const ServiceConfig& config,
                                               const runtime::StopToken& stop);

/// Executes one WorkItem: the response frames to stream back, in order.
/// Combines the item's admission deadline with the server's cancel token
/// (forced shutdown) into the StopToken threaded through the engine.
/// Never throws.
[[nodiscard]] std::vector<Response> execute_work_item(
    const WorkItem& item, const ServiceConfig& config,
    const runtime::CancelToken& cancel);

}  // namespace ntr::serve
