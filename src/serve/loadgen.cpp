#include "serve/loadgen.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>

#include "core/resilience.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "graph/net.h"
#include "io/net_io.h"
#include "serve/chaos.h"
#include "serve/wire.h"
#include "spice/technology.h"

namespace ntr::serve {

using runtime::Status;
using runtime::StatusCode;

namespace {

/// Types a socket-level errno into the retryability taxonomy: refused /
/// unreachable peers are kUnavailable (the server may come back), torn
/// connections are kConnectionReset (reconnect and resend), stalls are
/// kTimeout. Anything else stays kIoError.
StatusCode socket_errno_code(int err) {
  switch (err) {
    case ECONNREFUSED:
    case ENETUNREACH:
    case EHOSTUNREACH:
      return StatusCode::kUnavailable;
    case ECONNRESET:
    case ECONNABORTED:
    case EPIPE:
      return StatusCode::kConnectionReset;
    case ETIMEDOUT:
      return StatusCode::kTimeout;
    default:
      return StatusCode::kIoError;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Client.

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Client::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    return Status(StatusCode::kIoError,
                  "socket: " + std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    return Status(StatusCode::kBadInput, "unparseable host '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    const Status s(socket_errno_code(errno),
                   "connect " + host + ":" + std::to_string(port) + ": " +
                       std::string(std::strerror(errno)));
    close();
    return s;
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Status();
}

Status Client::send_bytes(std::string_view bytes) {
  if (fd_ < 0) return Status(StatusCode::kIoError, "client not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = chaos::chaos_send(fd_, bytes.data() + off,
                                        bytes.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status(socket_errno_code(errno),
                  "send: " + std::string(std::strerror(errno)));
  }
  return Status();
}

Status Client::send_document(const Json& doc) {
  return send_bytes(encode_frame(doc.dump()));
}

Status Client::read_exact(char* buf, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t got = chaos::chaos_recv(fd_, buf + off, n - off, 0);
    if (got > 0) {
      off += static_cast<std::size_t>(got);
      continue;
    }
    if (got == 0)
      return Status(StatusCode::kConnectionReset,
                    "connection closed by server");
    if (errno == EINTR) continue;
    return Status(socket_errno_code(errno),
                  "recv: " + std::string(std::strerror(errno)));
  }
  return Status();
}

runtime::StatusOr<Response> Client::read_response() {
  if (fd_ < 0) return Status(StatusCode::kIoError, "client not connected");
  unsigned char header[kFrameHeaderBytes];
  Status s = read_exact(reinterpret_cast<char*>(header), sizeof header);
  if (!s.ok()) return s;
  const std::uint32_t len = (static_cast<std::uint32_t>(header[0]) << 24) |
                            (static_cast<std::uint32_t>(header[1]) << 16) |
                            (static_cast<std::uint32_t>(header[2]) << 8) |
                            static_cast<std::uint32_t>(header[3]);
  if (len == 0 || len > kDefaultMaxFrameBytes * 16)
    return Status(StatusCode::kBadInput,
                  "implausible response frame length " + std::to_string(len));
  std::string payload(len, '\0');
  s = read_exact(payload.data(), payload.size());
  if (!s.ok()) return s;
  runtime::StatusOr<Json> doc = Json::parse(payload);
  if (!doc.ok()) return doc.status();
  return Response::from_json(*doc);
}

bool response_set_complete(const std::vector<Response>& frames, RouteMode mode) {
  std::size_t expected = 0;
  std::size_t counted = 0;
  for (const Response& f : frames) {
    if (f.kind == ResponseKind::kPong || f.kind == ResponseKind::kStats ||
        f.kind == ResponseKind::kShutdown)
      return true;
    if (f.kind == ResponseKind::kSummary) return true;  // flow terminal frame
    if (f.kind == ResponseKind::kError && f.net_count == 0)
      return true;  // request-level failure
    if (f.kind == ResponseKind::kNet ||
        (f.kind == ResponseKind::kError && f.net_count > 0)) {
      ++counted;
      expected = f.net_count;
    }
  }
  // A flow batch ends with its summary; a solve batch ends when every
  // net is accounted for (routed or individually rejected).
  return mode == RouteMode::kSolve && expected > 0 && counted >= expected;
}

runtime::StatusOr<std::vector<Response>> Client::call(const Request& req) {
  Status s = send_document(request_to_json(req));
  if (!s.ok()) return s;
  std::vector<Response> frames;
  while (!response_set_complete(frames, req.mode)) {
    runtime::StatusOr<Response> r = read_response();
    if (!r.ok()) return r.status();
    frames.push_back(*std::move(r));
  }
  return frames;
}

// ---------------------------------------------------------------------------
// Load generator.

double backoff_delay_ms(const RetryPolicy& policy, std::size_t attempt,
                        std::uint64_t salt) {
  double step = policy.backoff_ms;
  for (std::size_t i = 0; i < attempt && step < policy.backoff_max_ms; ++i)
    step *= 2.0;
  step = std::min(step, policy.backoff_max_ms);
  // Seeded jitter, not rand(): the same (policy, attempt, salt) always
  // waits the same time, so a failing chaos run replays exactly.
  chaos::ChaosRng rng(salt ^ (0xB0FFULL + attempt));
  return step * (0.5 + 0.5 * rng.next_unit());
}

double percentile(std::vector<double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = std::ceil(q * static_cast<double>(sample.size()));
  std::size_t idx = rank <= 1.0 ? 0 : static_cast<std::size_t>(rank) - 1;
  idx = std::min(idx, sample.size() - 1);
  return sample[idx];
}

namespace {

using Clock = std::chrono::steady_clock;

double ms_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

std::uint64_t request_seed(const LoadgenOptions& o, std::size_t client,
                           std::size_t k) {
  return o.seed + 1000003ULL * client + k;
}

/// The nets of request (client, k), regenerated identically by the
/// sender and by --verify.
std::vector<graph::Net> request_nets(const LoadgenOptions& o, std::size_t client,
                                     std::size_t k) {
  expt::NetGenerator gen(request_seed(o, client, k));
  std::vector<graph::Net> nets;
  nets.reserve(o.nets_per_request);
  for (std::size_t j = 0; j < o.nets_per_request; ++j)
    nets.push_back(gen.random_net(o.pins));
  return nets;
}

Request build_request(const LoadgenOptions& o, std::size_t client,
                      std::size_t k) {
  Request req;
  req.id = Json::string("c" + std::to_string(client) + "-r" + std::to_string(k));
  req.mode = o.mode;
  for (const graph::Net& net : request_nets(o, client, k))
    req.nets.push_back(io::write_net(net));
  req.strategy = o.strategy;
  req.evaluator = o.evaluator;
  req.deadline_ms = o.deadline_ms;
  // 1-based so "--timeout-every 4" hits requests 3, 7, ...: never the
  // very first, which keeps tiny runs from timing out everything.
  if (o.timeout_every > 0 && (k + 1) % o.timeout_every == 0)
    req.deadline_ms = 0.05;  // ~expired at admission: forces the ladder
  return req;
}

/// A rung-0 routing to re-derive locally for the bit-identity check.
struct VerifyItem {
  std::size_t client = 0;
  std::size_t k = 0;
  std::size_t net_index = 0;
  std::string routing;
};

/// Thread-shared accumulator for the client fleet.
struct Aggregator {
  std::mutex mutex;
  LoadgenReport report;
  std::vector<VerifyItem> verify_items;
  const LoadgenOptions& options;

  explicit Aggregator(const LoadgenOptions& o) : options(o) {}

  void record_set(std::size_t client, std::size_t k,
                  const std::vector<Response>& frames, double latency_ms) {
    std::lock_guard<std::mutex> lock(mutex);
    ++report.response_sets;
    report.latencies_ms.push_back(latency_ms);
    for (const Response& f : frames) {
      if (f.kind == ResponseKind::kNet) {
        ++report.net_frames;
        if (f.status == ResponseStatus::kOk) {
          ++report.ok;
          if (options.verify && options.mode == RouteMode::kSolve &&
              f.rung == 0 && !f.routing.empty() &&
              verify_items.size() < 65536)
            verify_items.push_back(VerifyItem{client, k, f.net_index, f.routing});
        } else if (f.status == ResponseStatus::kDegraded) {
          ++report.degraded;
        } else if (f.status == ResponseStatus::kQuarantined) {
          ++report.quarantined;
        } else {
          ++report.errors;
        }
      } else if (f.kind == ResponseKind::kError) {
        if (f.status == ResponseStatus::kOverloaded)
          ++report.overloaded;
        else
          ++report.errors;
      }
    }
  }

  void count(std::size_t LoadgenReport::* field, std::size_t n = 1) {
    std::lock_guard<std::mutex> lock(mutex);
    report.*field += n;
  }
};

void count_connect_failure(Aggregator& agg, const Status& s) {
  agg.count(&LoadgenReport::connect_failures);
  if (s.code() == StatusCode::kUnavailable)
    agg.count(&LoadgenReport::connect_refused);
  else if (s.code() == StatusCode::kConnectionReset)
    agg.count(&LoadgenReport::connect_reset);
  else if (s.code() == StatusCode::kTimeout)
    agg.count(&LoadgenReport::connect_timeout);
}

void backoff_sleep(const RetryPolicy& policy, std::size_t attempt,
                   std::uint64_t salt) {
  std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
      backoff_delay_ms(policy, attempt, salt)));
}

/// Connects with the retry policy. `ever_connected` distinguishes a
/// first connect from a reconnect in the report.
bool connect_with_retry(Client& client, const LoadgenOptions& o,
                        Aggregator& agg, std::uint64_t salt,
                        bool& ever_connected) {
  for (std::size_t attempt = 0;; ++attempt) {
    const Status s = client.connect(o.host, o.port);
    if (s.ok()) {
      if (ever_connected) agg.count(&LoadgenReport::reconnects);
      ever_connected = true;
      return true;
    }
    count_connect_failure(agg, s);
    if (attempt >= o.retry.max_retries) return false;
    agg.count(&LoadgenReport::retries);
    backoff_sleep(o.retry, attempt, salt);
  }
}

/// True when every frame of a complete set is a retryable refusal --
/// the whole request was turned away, so a resend cannot duplicate
/// delivered results.
bool all_refused(const std::vector<Response>& frames) {
  if (frames.empty()) return false;
  for (const Response& f : frames) {
    if (f.kind != ResponseKind::kError) return false;
    if (f.status != ResponseStatus::kOverloaded &&
        f.status != ResponseStatus::kShuttingDown)
      return false;
  }
  return true;
}

void closed_loop_client(std::size_t ci, const LoadgenOptions& o, Aggregator& agg) {
  Client client;
  bool ever_connected = false;
  if (!connect_with_retry(client, o, agg, request_seed(o, ci, 0),
                          ever_connected))
    return;
  for (std::size_t k = 0; k < o.requests_per_client; ++k) {
    const Request req = build_request(o, ci, k);
    agg.count(&LoadgenReport::requests_sent);
    const std::uint64_t salt = request_seed(o, ci, k);
    bool recorded = false;
    for (std::size_t attempt = 0; attempt <= o.retry.max_retries; ++attempt) {
      if (attempt > 0) {
        agg.count(&LoadgenReport::retries);
        backoff_sleep(o.retry, attempt - 1, salt);
      }
      if (!client.connected() &&
          !connect_with_retry(client, o, agg, salt, ever_connected))
        break;
      const Clock::time_point t0 = Clock::now();
      const runtime::StatusOr<std::vector<Response>> frames = client.call(req);
      if (!frames.ok()) {
        // Mid-call drop (reset, torn frame, chaos disconnect): reconnect
        // and resend on the next attempt. Routing is idempotent, and the
        // dead socket cannot deliver partial results twice.
        agg.count(&LoadgenReport::dropped_connections);
        client.close();
        continue;
      }
      if (all_refused(*frames) && attempt < o.retry.max_retries)
        continue;  // overloaded/shutting-down: back off, resend
      agg.record_set(ci, k, *frames, ms_between(t0, Clock::now()));
      recorded = true;
      break;
    }
    if (!recorded) {
      agg.count(&LoadgenReport::unrecovered);
      if (!client.connected()) return;  // peer hard-down: stop this client
    }
  }
}

void open_loop_client(std::size_t ci, const LoadgenOptions& o, Aggregator& agg) {
  Client client;
  bool ever_connected = false;
  if (!connect_with_retry(client, o, agg, request_seed(o, ci, 0),
                          ever_connected))
    return;

  struct Pending {
    Clock::time_point t0;
    std::size_t k = 0;
    std::vector<Response> frames;
  };
  std::mutex mu;
  std::map<std::string, Pending> pending;
  std::size_t sent = 0;
  bool sender_dead = false;

  // Joined before scope exit.
  std::thread sender([&] {  // ntr-lint-allow(escaping-ref-capture)
    const auto interval = std::chrono::duration<double>(1.0 / o.open_loop_rate);
    Clock::time_point next = Clock::now();
    for (std::size_t k = 0; k < o.requests_per_client; ++k) {
      const Request req = build_request(o, ci, k);
      const std::string rid = req.id.as_string();
      {
        std::lock_guard<std::mutex> lock(mu);
        pending[rid] = Pending{Clock::now(), k, {}};
        ++sent;
      }
      agg.count(&LoadgenReport::requests_sent);
      if (!client.send_document(request_to_json(req)).ok()) {
        std::lock_guard<std::mutex> lock(mu);
        sender_dead = true;
        return;
      }
      next += std::chrono::duration_cast<Clock::duration>(interval);
      std::this_thread::sleep_until(next);
    }
  });

  // Reader: match frames to in-flight requests by id until every sent
  // request has a complete response set (or the socket dies).
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (pending.empty() && (sender_dead || sent == o.requests_per_client))
        break;
    }
    runtime::StatusOr<Response> frame = client.read_response();
    if (!frame.ok()) {
      agg.count(&LoadgenReport::dropped_connections);
      break;
    }
    const std::string rid =
        frame->id.is_string() ? frame->id.as_string() : std::string();
    std::vector<Response> done_frames;
    Clock::time_point t0{};
    std::size_t done_k = 0;
    bool done = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = pending.find(rid);
      if (it == pending.end()) continue;  // stale or unmatched frame
      it->second.frames.push_back(*std::move(frame));
      if (response_set_complete(it->second.frames, o.mode)) {
        done = true;
        t0 = it->second.t0;
        done_k = it->second.k;
        done_frames = std::move(it->second.frames);
        pending.erase(it);
      }
    }
    if (done) agg.record_set(ci, done_k, done_frames, ms_between(t0, Clock::now()));
  }
  sender.join();
}

/// Recomputes every collected rung-0 routing with the library directly
/// (same strategy/evaluator/config the service uses) and bit-compares.
void run_verification(Aggregator& agg) {
  const LoadgenOptions& o = agg.options;
  const spice::Technology tech = spice::kTable1Technology;
  const std::unique_ptr<delay::DelayEvaluator> evaluator =
      delay::make_evaluator(o.evaluator, tech);
  if (evaluator == nullptr) return;
  for (const VerifyItem& item : agg.verify_items) {
    const std::vector<graph::Net> nets = request_nets(o, item.client, item.k);
    if (item.net_index >= nets.size()) {
      ++agg.report.verify_mismatches;
      continue;
    }
    core::SolverConfig config;
    config.tech = tech;
    const core::GuardedSolution guarded = core::solve_resilient(
        nets[item.net_index], o.strategy, *evaluator, config, {});
    ++agg.report.verified;
    if (!guarded.solution ||
        io::write_routing(guarded.solution->graph) != item.routing)
      ++agg.report.verify_mismatches;
  }
}

}  // namespace

LoadgenReport run_loadgen(const LoadgenOptions& options) {
  Aggregator agg(options);
  const Clock::time_point t0 = Clock::now();
  {
    std::vector<std::thread> fleet;
    fleet.reserve(options.clients);
    for (std::size_t ci = 0; ci < options.clients; ++ci) {
      // Joined at the end of this block.
      fleet.emplace_back([ci, &options, &agg] {  // ntr-lint-allow(escaping-ref-capture)
        if (options.open_loop_rate > 0.0)
          open_loop_client(ci, options, agg);
        else
          closed_loop_client(ci, options, agg);
      });
    }
    for (std::thread& t : fleet) t.join();
  }
  agg.report.wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  if (options.verify) run_verification(agg);

  LoadgenReport& r = agg.report;
  if (r.wall_s > 0.0)
    r.throughput_rps = static_cast<double>(r.response_sets) / r.wall_s;
  if (!r.latencies_ms.empty()) {
    double sum = 0.0, mx = 0.0;
    for (const double v : r.latencies_ms) {
      sum += v;
      mx = std::max(mx, v);
    }
    r.mean_ms = sum / static_cast<double>(r.latencies_ms.size());
    r.max_ms = mx;
    r.p50_ms = percentile(r.latencies_ms, 0.50);
    r.p95_ms = percentile(r.latencies_ms, 0.95);
    r.p99_ms = percentile(r.latencies_ms, 0.99);
  }
  return agg.report;
}

std::string LoadgenReport::to_bench_json(const LoadgenOptions& options) const {
  Json doc = Json::object();
  doc.set("bench", Json::string("serve"));
  doc.set("hardware_concurrency",
          Json::number(std::thread::hardware_concurrency()));
  Json config = Json::object();
  config.set("trials", Json::number(static_cast<double>(
                           options.requests_per_client)));
  config.set("seed", Json::number(static_cast<double>(options.seed)));
  Json sizes = Json::array();
  sizes.push_back(Json::number(static_cast<double>(options.pins)));
  config.set("net_sizes", std::move(sizes));
  config.set("clients", Json::number(static_cast<double>(options.clients)));
  config.set("nets_per_request",
             Json::number(static_cast<double>(options.nets_per_request)));
  config.set("mode", Json::string(options.mode == RouteMode::kFlow ? "flow"
                                                                   : "solve"));
  config.set("open_loop_rate", Json::number(options.open_loop_rate));
  doc.set("config", std::move(config));
  // Meaningful when --verify ran; vacuously true otherwise so the gate
  // only trips on observed mismatches.
  doc.set("outputs_identical", Json::boolean(verify_mismatches == 0));

  Json phase = Json::object();
  phase.set("name", Json::string("serve_load"));
  phase.set("wall_s", Json::number(wall_s));
  Json metrics = Json::object();
  metrics.set("requests", Json::number(static_cast<double>(requests_sent)));
  metrics.set("response_sets", Json::number(static_cast<double>(response_sets)));
  metrics.set("net_frames", Json::number(static_cast<double>(net_frames)));
  metrics.set("ok", Json::number(static_cast<double>(ok)));
  metrics.set("degraded", Json::number(static_cast<double>(degraded)));
  metrics.set("quarantined", Json::number(static_cast<double>(quarantined)));
  metrics.set("overloaded", Json::number(static_cast<double>(overloaded)));
  metrics.set("errors", Json::number(static_cast<double>(errors)));
  metrics.set("connect_failures",
              Json::number(static_cast<double>(connect_failures)));
  metrics.set("connect_refused",
              Json::number(static_cast<double>(connect_refused)));
  metrics.set("connect_reset", Json::number(static_cast<double>(connect_reset)));
  metrics.set("connect_timeout",
              Json::number(static_cast<double>(connect_timeout)));
  metrics.set("dropped_connections",
              Json::number(static_cast<double>(dropped_connections)));
  metrics.set("retries", Json::number(static_cast<double>(retries)));
  metrics.set("reconnects", Json::number(static_cast<double>(reconnects)));
  metrics.set("unrecovered", Json::number(static_cast<double>(unrecovered)));
  metrics.set("verified", Json::number(static_cast<double>(verified)));
  metrics.set("verify_mismatches",
              Json::number(static_cast<double>(verify_mismatches)));
  metrics.set("throughput_rps", Json::number(throughput_rps));
  phase.set("metrics", std::move(metrics));
  Json latency = Json::object();
  latency.set("p50", Json::number(p50_ms));
  latency.set("p95", Json::number(p95_ms));
  latency.set("p99", Json::number(p99_ms));
  latency.set("mean", Json::number(mean_ms));
  latency.set("max", Json::number(max_ms));
  phase.set("latency_ms", std::move(latency));
  Json phases = Json::array();
  phases.push_back(std::move(phase));
  doc.set("phases", std::move(phases));

  Json summary = Json::object();
  summary.set("throughput_rps", Json::number(throughput_rps));
  summary.set("p99_latency_ms", Json::number(p99_ms));
  doc.set("summary", std::move(summary));
  return doc.dump();
}

std::string LoadgenReport::summary() const {
  char buf[640];
  std::snprintf(buf, sizeof buf,
                "%zu requests (%zu answered, %zu net frames: %zu ok, %zu "
                "degraded, %zu quarantined, %zu overloaded, %zu errors) in "
                "%.3fs; %.1f req/s; latency ms p50 %.2f p95 %.2f p99 %.2f "
                "max %.2f; %zu dropped connections; %zu retries, %zu "
                "reconnects, %zu unrecovered; verified %zu (%zu mismatches)",
                requests_sent, response_sets, net_frames, ok, degraded,
                quarantined, overloaded, errors, wall_s, throughput_rps,
                p50_ms, p95_ms, p99_ms, max_ms, dropped_connections, retries,
                reconnects, unrecovered, verified, verify_mismatches);
  return std::string(buf);
}

}  // namespace ntr::serve
