#include "serve/wire.h"

#include "check/contracts.h"
#include "check/faultinject.h"

namespace ntr::serve {

using runtime::Status;
using runtime::StatusCode;

std::string encode_frame(std::string_view payload) {
  // A payload the 32-bit header cannot express would silently truncate
  // into a permanently desynced stream; no real response comes within
  // orders of magnitude of the limit.
  NTR_CHECK(payload.size() <= 0xFFFFFFFFu);
  const auto n =  // checked above
      static_cast<std::uint32_t>(payload.size());  // ntr-lint-allow(unchecked-narrowing)
  std::string frame;
  frame.reserve(kFrameHeaderBytes + payload.size());
  frame += static_cast<char>((n >> 24) & 0xFF);
  frame += static_cast<char>((n >> 16) & 0xFF);
  frame += static_cast<char>((n >> 8) & 0xFF);
  frame += static_cast<char>(n & 0xFF);
  frame.append(payload.data(), payload.size());
  return frame;
}

void FrameDecoder::feed(std::string_view bytes) {
  if (!error_.ok()) return;
  // Compact the consumed prefix before it can grow without bound.
  if (pos_ > 0 && (pos_ >= buf_.size() || pos_ > 4096)) {
    buf_.erase(0, pos_);
    pos_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

FrameDecoder::Result FrameDecoder::next(std::string& payload) {
  if (!error_.ok()) return Result::kError;
  try {
    NTR_FAULT_POINT(kServeFrameDecode);
  } catch (const runtime::NtrError& e) {
    // An injected header failure poisons the stream exactly like a real
    // hostile header would: latched, no resync.
    error_ = Status(e.code(), e.what());
    return Result::kError;
  }
  const std::size_t available = buf_.size() - pos_;
  if (available < kFrameHeaderBytes) return Result::kNeedMore;
  const auto* p = reinterpret_cast<const unsigned char*>(buf_.data() + pos_);
  const std::size_t length = (static_cast<std::size_t>(p[0]) << 24) |
                             (static_cast<std::size_t>(p[1]) << 16) |
                             (static_cast<std::size_t>(p[2]) << 8) |
                             static_cast<std::size_t>(p[3]);
  if (length == 0) {
    error_ = Status(StatusCode::kBadInput, "frame: empty payload");
    return Result::kError;
  }
  if (length > max_frame_bytes_) {
    error_ = Status(StatusCode::kBadInput,
                    "frame: declared payload of " + std::to_string(length) +
                        " bytes exceeds the " +
                        std::to_string(max_frame_bytes_) + "-byte cap");
    return Result::kError;
  }
  if (available < kFrameHeaderBytes + length) return Result::kNeedMore;
  payload.assign(buf_, pos_ + kFrameHeaderBytes, length);
  pos_ += kFrameHeaderBytes + length;
  return Result::kFrame;
}

}  // namespace ntr::serve
