#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/resilience.h"
#include "core/solver.h"
#include "runtime/status.h"
#include "serve/json.h"

/// The ntr_serve request/response protocol (see docs/serving.md).
///
/// One frame (serve/wire.h) carries one JSON document. A request routes a
/// batch of nets; the server *streams* one `net` response frame per net
/// as it completes (plus a `summary` frame in flow mode), so a client
/// overlaps receiving early results with the server still routing late
/// ones. The response-status taxonomy is the tool exit-code taxonomy
/// (io/cli.h, codes 0-4) lifted to per-request granularity.
namespace ntr::serve {

enum class RequestOp : std::uint8_t {
  kRoute,     ///< route a batch of nets (the workload)
  kPing,      ///< liveness probe; answered inline by the event loop
  kStats,     ///< health/stats snapshot; answered inline by the event loop
  kShutdown,  ///< graceful drain: finish queued work, flush, exit
};

enum class RouteMode : std::uint8_t {
  kSolve,  ///< independent per-net solves; nets interleave across clients
  kFlow,   ///< the whole batch through flow::run_timing_flow (STA-coupled)
};

/// A parsed request. Defaults match `ntr_route` where the two tools
/// overlap so the service's routings stay bit-identical to the CLI's.
struct Request {
  Json id;  ///< echoed verbatim on every response frame (null when absent)
  RequestOp op = RequestOp::kRoute;
  RouteMode mode = RouteMode::kSolve;
  /// Net texts in the io::read_net format, one per routed net.
  std::vector<std::string> nets;
  core::Strategy strategy = core::Strategy::kLdrg;
  /// transient|elmore|graph-elmore|d2m (delay::make_evaluator names).
  std::string evaluator = "graph-elmore";
  /// Per-request wall budget in ms, counted from *admission* -- queueing
  /// delay spends it, which is exactly the overload/QoS policy. 0 = the
  /// server's default.
  double deadline_ms = 0.0;
  core::OnError on_error = core::OnError::kDegrade;
  std::size_t max_edges = static_cast<std::size_t>(-1);
  /// Flow mode: clock period for the synthetic STA design.
  double clock_period_s = 5e-9;
  /// Test hook (honored only under ServiceConfig::enable_test_hooks):
  /// the worker busy-waits this long before solving, ignoring its
  /// deadline but honoring cancel -- a deliberately wedged lane for the
  /// watchdog tests. 0 = off; rejected as kBadRequest when hooks are off.
  double debug_wedge_ms = 0.0;
};

/// Parses a request document. kBadInput with a user-readable message on
/// unknown ops/strategies/evaluators, missing nets, or bad field types;
/// the caller maps that to a kBadRequest response.
[[nodiscard]] runtime::StatusOr<Request> parse_request(const Json& doc);

/// The wire name io::strategy_from_name accepts ("ldrg", "mst", ...).
[[nodiscard]] const char* strategy_wire_name(core::Strategy s);

/// Client-side serializer: emits a document parse_request reads back to
/// an equivalent Request (the loadgen and tests round-trip through it).
[[nodiscard]] Json request_to_json(const Request& req);

/// Response statuses: the service-level taxonomy. The first three mirror
/// core::NetDisposition; the rest classify request-level failures.
enum class ResponseStatus : std::uint8_t {
  kOk,            ///< requested strategy shipped (rung 0)
  kDegraded,      ///< the degradation ladder shipped a weaker routing
  kQuarantined,   ///< no rung produced a routing; net dropped
  kBadRequest,    ///< malformed JSON / unknown op / bad fields
  kBadInput,      ///< a net failed the io validators (NaN coords, ...)
  kOverloaded,    ///< bounded queue full; retry later
  kShuttingDown,  ///< server draining; no new work admitted
  kTimeout,       ///< deadline exceeded under on_error=fail
  kCancelled,     ///< server cancelled the request (forced shutdown)
  kNumerical,     ///< singular/non-finite failure under on_error=fail
  kInternal,      ///< contract violation or unclassified failure
};

/// Stable wire name ("ok", "degraded", "overloaded", ...).
[[nodiscard]] const char* response_status_name(ResponseStatus s);
[[nodiscard]] std::optional<ResponseStatus> response_status_from_name(
    std::string_view name);

/// The `code` a response carries: the exit code `ntr_route` would have
/// produced for the same condition (io/cli.h, 0-4). Shipped routings --
/// ok or degraded -- are 0, exactly like the CLI under --on-error=degrade.
[[nodiscard]] int response_code(ResponseStatus s);

/// Classifies a failure Status into the response taxonomy.
[[nodiscard]] ResponseStatus status_from_error(const runtime::Status& error);

/// Classifies a resilient solve's outcome (ok / degraded / quarantined;
/// a quarantine refines through status_from_error on its first failure).
[[nodiscard]] ResponseStatus status_from_outcome(const core::NetOutcome& outcome);

enum class ResponseKind : std::uint8_t {
  kNet,       ///< one routed (or failed) net of a batch
  kSummary,   ///< flow-mode batch summary (timing report)
  kPong,      ///< answer to kPing
  kStats,     ///< answer to kStats (the `stats` document)
  kShutdown,  ///< acknowledgment of kShutdown
  kError,     ///< request-level failure (bad request, overloaded, ...)
};

[[nodiscard]] const char* response_kind_name(ResponseKind k);
[[nodiscard]] std::optional<ResponseKind> response_kind_from_name(
    std::string_view name);

/// One response frame. Which fields are meaningful depends on `kind`;
/// to_json() serializes exactly the meaningful ones, in a stable order.
struct Response {
  Json id;
  ResponseKind kind = ResponseKind::kError;
  ResponseStatus status = ResponseStatus::kInternal;
  int code = 1;
  std::string error;  ///< human-readable detail for non-ok statuses

  // kNet fields.
  std::size_t net_index = 0;
  std::size_t net_count = 0;
  int rung = 0;  ///< degradation-ladder rung that shipped the routing
  std::string routing;  ///< io::write_routing text ("" when quarantined)
  std::vector<double> delays_s;  ///< per-sink delays, ordered like sinks()
  double wirelength_um = 0.0;
  double max_delay_s = 0.0;
  std::string evaluator;  ///< evaluator that measured delays_s

  // kSummary fields (flow mode).
  unsigned iterations = 0;
  std::size_t nets_rerouted = 0;
  double initial_worst_slack_s = 0.0;
  double worst_slack_s = 0.0;

  // kStats field: the server's counter snapshot as a JSON object.
  Json stats;

  [[nodiscard]] std::string to_json() const;
  /// Client-side parse; kBadInput on structurally invalid documents.
  [[nodiscard]] static runtime::StatusOr<Response> from_json(const Json& doc);
};

/// Convenience constructor for request-level error responses.
[[nodiscard]] Response make_error_response(const Json& id, ResponseStatus status,
                                           std::string detail);

}  // namespace ntr::serve
