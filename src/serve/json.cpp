#include "serve/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "check/faultinject.h"

namespace ntr::serve {

namespace {

using runtime::NtrError;
using runtime::Status;
using runtime::StatusCode;

/// Nesting cap: deep enough for any real request, shallow enough that a
/// hostile payload cannot blow the parser's stack.
constexpr int kMaxDepth = 64;

[[noreturn]] void kind_error(const char* wanted) {
  throw NtrError(StatusCode::kBadInput,
                 std::string("json: value is not ") + wanted);
}

}  // namespace

Json Json::boolean(bool v) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

Json Json::number(double v) {
  if (!std::isfinite(v))
    throw NtrError(StatusCode::kNonFinite, "json: non-finite number");
  Json j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

Json Json::string(std::string v) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

Json Json::array(std::vector<Json> items) {
  Json j;
  j.kind_ = Kind::kArray;
  j.items_ = std::move(items);
  return j;
}

Json Json::object(std::vector<Member> members) {
  Json j;
  j.kind_ = Kind::kObject;
  j.members_ = std::move(members);
  return j;
}

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a bool");
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return string_;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return items_;
}

const std::vector<Json::Member>& Json::members() const {
  if (kind_ != Kind::kObject) kind_error("an object");
  return members_;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_)
    if (m.first == key) return &m.second;
  return nullptr;
}

void Json::push_back(Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) kind_error("an array");
  // The solver never builds documents; the hot edge is a push_back() name
  // collision with the candidate scan's std::vector.
  // ntr-alloc-in-hot-path(JSON builder, serve layer only)
  items_.push_back(std::move(v));
}

void Json::set(std::string key, Json v) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("an object");
  members_.emplace_back(std::move(key), std::move(v));
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::string& out, double v) {
  // Integral values (the common case: ids, counts, codes) print without a
  // fraction; everything else round-trips through %.17g.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void dump_value(std::string& out, const Json& j) {
  switch (j.kind()) {
    case Json::Kind::kNull:
      out += "null";
      return;
    case Json::Kind::kBool:
      out += j.as_bool() ? "true" : "false";
      return;
    case Json::Kind::kNumber:
      dump_number(out, j.as_number());
      return;
    case Json::Kind::kString:
      out += '"';
      out += json_escape(j.as_string());
      out += '"';
      return;
    case Json::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const Json& item : j.items()) {
        if (!first) out += ',';
        first = false;
        dump_value(out, item);
      }
      out += ']';
      return;
    }
    case Json::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const Json::Member& m : j.members()) {
        if (!first) out += ',';
        first = false;
        out += '"';
        out += json_escape(m.first);
        out += "\":";
        dump_value(out, m.second);
      }
      out += '}';
      return;
    }
  }
}

/// Strict recursive-descent parser over a string_view cursor.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status parse_document(Json& out) {
    Status s = parse_value(out, 0);
    if (!s.ok()) return s;
    skip_ws();
    if (pos_ != text_.size())
      return reject("trailing characters after the document");
    return Status::ok_status();
  }

 private:
  Status reject(const std::string& why) const {
    return Status(StatusCode::kBadInput,
                  "json: " + why + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Status parse_value(Json& out, int depth) {
    if (depth > kMaxDepth) return reject("nesting too deep");
    skip_ws();
    if (pos_ >= text_.size()) return reject("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return parse_object(out, depth);
    if (c == '[') return parse_array(out, depth);
    if (c == '"') {
      std::string s;
      Status st = parse_string(s);
      if (!st.ok()) return st;
      out = Json::string(std::move(s));
      return Status::ok_status();
    }
    if (consume_word("true")) {
      out = Json::boolean(true);
      return Status::ok_status();
    }
    if (consume_word("false")) {
      out = Json::boolean(false);
      return Status::ok_status();
    }
    if (consume_word("null")) {
      out = Json();
      return Status::ok_status();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number(out);
    return reject("unexpected character");
  }

  Status parse_number(Json& out) {
    const std::size_t start = pos_;
    if (consume('-')) {
      // fallthrough: digits must follow
    }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
      return reject("malformed number");
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    if (consume('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return reject("malformed number");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9')
        return reject("malformed number");
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9')
        ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) return reject("number out of range");
    out = Json::number(v);
    return Status::ok_status();
  }

  Status parse_string(std::string& out) {
    if (!consume('"')) return reject("expected '\"'");
    out.clear();
    while (true) {
      if (pos_ >= text_.size()) return reject("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::ok_status();
      if (static_cast<unsigned char>(c) < 0x20)
        return reject("unescaped control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return reject("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned code = 0;
          Status st = parse_hex4(code);
          if (!st.ok()) return st;
          // Surrogate pair: a high surrogate must be followed by \uDC00..
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (!consume('\\') || !consume('u'))
              return reject("lone high surrogate");
            unsigned low = 0;
            st = parse_hex4(low);
            if (!st.ok()) return st;
            if (low < 0xDC00 || low > 0xDFFF)
              return reject("invalid low surrogate");
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          } else if (code >= 0xDC00 && code <= 0xDFFF) {
            return reject("lone low surrogate");
          }
          append_utf8(out, code);
          break;
        }
        default:
          return reject("unknown escape");
      }
    }
  }

  Status parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return reject("truncated \\u escape");
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9')
        out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f')
        out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        out |= static_cast<unsigned>(c - 'A' + 10);
      else
        return reject("bad hex digit in \\u escape");
    }
    return Status::ok_status();
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xC0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else if (code < 0x10000) {
      out += static_cast<char>(0xE0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (code >> 18));
      out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (code & 0x3F));
    }
  }

  Status parse_array(Json& out, int depth) {
    consume('[');
    out = Json::array();
    skip_ws();
    if (consume(']')) return Status::ok_status();
    while (true) {
      Json item;
      Status st = parse_value(item, depth + 1);
      if (!st.ok()) return st;
      out.push_back(std::move(item));
      skip_ws();
      if (consume(']')) return Status::ok_status();
      if (!consume(',')) return reject("expected ',' or ']'");
    }
  }

  Status parse_object(Json& out, int depth) {
    consume('{');
    out = Json::object();
    skip_ws();
    if (consume('}')) return Status::ok_status();
    while (true) {
      skip_ws();
      std::string key;
      Status st = parse_string(key);
      if (!st.ok()) return st;
      skip_ws();
      if (!consume(':')) return reject("expected ':'");
      Json value;
      st = parse_value(value, depth + 1);
      if (!st.ok()) return st;
      out.set(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return Status::ok_status();
      if (!consume(',')) return reject("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string Json::dump() const {
  std::string out;
  out.reserve(64);
  dump_value(out, *this);
  return out;
}

runtime::StatusOr<Json> Json::parse(std::string_view text) {
  try {
    NTR_FAULT_POINT(kServeJsonParse);
  } catch (const NtrError& e) {
    // Injected parse failure surfaces exactly like malformed JSON: a
    // typed Status the caller maps to a bad-request response.
    return Status(e.code(), e.what());
  }
  Parser parser(text);
  Json doc;
  Status status = parser.parse_document(doc);
  if (!status.ok()) return status;
  return doc;
}

}  // namespace ntr::serve
