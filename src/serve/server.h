#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "runtime/status.h"
#include "serve/service.h"
#include "serve/wire.h"

/// The ntr_serve TCP server: a single epoll event loop owning every
/// socket, a bounded client-fair queue (serve/queue.h), and worker lanes
/// on the existing core::ThreadPool executing requests through the
/// re-entrant service layer (serve/service.h).
///
/// Threading model:
///
///  - The **event-loop thread** owns all connection state. It accepts,
///    reads, decodes frames, parses requests, admits work items, and
///    writes response frames. Nothing else touches a socket.
///  - **Worker lanes** pop items from the FairQueue, run the routing
///    engine, and hand the serialized response frames back through a
///    completion list + eventfd wakeup. Workers never see sockets.
///  - Per-client **backpressure**: while a client has too many items in
///    flight, the loop stops reading its socket (EPOLLIN off), pushing
///    the pressure into the kernel's TCP window instead of server memory.
///  - A **watchdog thread** samples each lane's in-flight item against
///    its admission deadline and cooperatively cancels (per-item
///    CancelSource) work wedged past deadline + grace, so one stuck
///    solve cannot pin a lane forever. Escalations are counted in
///    ServerStats and visible through the `stats` wire request.
///
/// Shutdown: request_shutdown() (async-signal-safe) or a `shutdown`
/// request stops accepting, closes the queue, lets queued work drain,
/// flushes every outbuf, then exits the loop. The destructor additionally
/// cancels in-flight solves so teardown is prompt.
namespace ntr::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound port()
  /// Worker lanes executing requests (>= 1).
  std::size_t workers = 2;
  /// FairQueue capacity: total queued items across clients.
  std::size_t queue_capacity = 256;
  /// Per-client in-flight cap (queued + executing items) before the loop
  /// stops reading that client's socket.
  std::size_t per_client_inflight = 32;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Watchdog scan period. 0 disables the watchdog thread entirely.
  double watchdog_interval_ms = 100.0;
  /// Grace past an item's admission deadline before the watchdog
  /// escalates (cancels) it. Only meaningful for bounded deadlines.
  double watchdog_grace_ms = 1000.0;
  /// Absolute wall ceiling for one item regardless of deadline -- the
  /// backstop for unbounded requests. 0 = no ceiling.
  double watchdog_stall_ms = 0.0;
  ServiceConfig service{};
};

/// Monotonic counters, snapshotted by stats().
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_closed = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t items_admitted = 0;
  std::uint64_t frames_sent = 0;
  std::uint64_t rejected_overloaded = 0;
  std::uint64_t rejected_bad_request = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t watchdog_scans = 0;
  std::uint64_t watchdog_cancels = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the event-loop and worker threads.
  /// kIoError when the address cannot be bound.
  [[nodiscard]] runtime::Status start();

  /// The bound port; valid after start() succeeded.
  [[nodiscard]] std::uint16_t port() const;

  /// Begins a graceful drain. Async-signal-safe (atomic flag + eventfd
  /// write), callable from any thread, idempotent.
  void request_shutdown();

  /// Blocks until the event loop has exited and workers joined.
  void wait();

  /// True between a successful start() and loop exit.
  [[nodiscard]] bool running() const;

  [[nodiscard]] ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ntr::serve
