#include "serve/queue.h"

#include <utility>

#include "check/faultinject.h"

namespace ntr::serve {

FairQueue::FairQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::size_t FairQueue::find_client(std::uint64_t client) const {
  for (std::size_t i = 0; i < queues_.size(); ++i)
    if (queues_[i].client == client) return i;
  return queues_.size();
}

FairQueue::Push FairQueue::push(std::uint64_t client, WorkItem item) {
  // Models an allocation/capacity failure at the admission boundary; the
  // server catches the typed throw and refuses the item as overloaded.
  NTR_FAULT_POINT(kServeQueuePush);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) return Push::kClosed;
    if (total_ >= capacity_) return Push::kFull;
    const std::size_t i = find_client(client);
    // A new client lands at index i == old size, right where find left off.
    if (i == queues_.size()) queues_.push_back(ClientQueue{client, {}});
    queues_[i].items.push_back(std::move(item));
    ++total_;
  }
  ready_.notify_one();
  return Push::kOk;
}

std::optional<WorkItem> FairQueue::pop() {
  std::unique_lock<std::mutex> lock(mutex_);
  ready_.wait(lock, [&] { return total_ > 0 || closed_; });
  if (total_ == 0) return std::nullopt;  // closed and drained
  if (rr_ >= queues_.size()) rr_ = 0;
  ClientQueue& q = queues_[rr_];
  WorkItem item = std::move(q.items.front());
  q.items.pop_front();
  --total_;
  if (q.items.empty()) {
    // Remove the drained client; rr_ now points at the next client.
    queues_.erase(queues_.begin() + static_cast<std::ptrdiff_t>(rr_));
  } else {
    ++rr_;  // round-robin: next pop serves the next client
  }
  return item;
}

void FairQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

void FairQueue::drop_client(std::uint64_t client) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t i = find_client(client);
  if (i == queues_.size()) return;
  total_ -= queues_[i].items.size();
  queues_.erase(queues_.begin() + static_cast<std::ptrdiff_t>(i));
  if (rr_ > i) --rr_;
}

std::size_t FairQueue::size() const {
  // ntr-blocking-in-lane(serve accessor; lanes reach it only via a size() name collision)
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

bool FairQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace ntr::serve
