#include "serve/chaosproxy.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ntr::serve {

using runtime::Status;
using runtime::StatusCode;

namespace {

/// recv that retries EINTR; returns <= 0 on EOF/error.
ssize_t recv_retry(int fd, char* buf, std::size_t n) {
  for (;;) {
    const ssize_t got = ::recv(fd, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

/// Sends exactly [data, data+n) unless the peer dies; false on error.
bool send_all(int fd, const char* data, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t sent = ::send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (sent > 0) {
      off += static_cast<std::size_t>(sent);
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

struct ChaosProxy::Impl {
  explicit Impl(ChaosProxyOptions opts) : options(std::move(opts)) {}

  ChaosProxyOptions options;
  int listen_fd = -1;
  std::uint16_t bound_port = 0;
  std::atomic<bool> stopping{false};

  std::thread accept_thread;
  /// Forwarder threads, appended by the accept thread, joined by wait().
  std::mutex threads_mutex;
  std::vector<std::thread> forwarders;

  /// Live connection fds so stop() can kick blocking recv/send calls.
  std::mutex fds_mutex;
  std::vector<int> live_fds;

  std::atomic<std::uint64_t> st_connections{0}, st_bytes{0}, st_chunks{0},
      st_disconnects{0}, st_delays{0}, st_trickles{0};

  void track_fd(int fd) {
    std::lock_guard<std::mutex> lock(fds_mutex);
    live_fds.push_back(fd);
  }

  void untrack_and_close(int fd) {
    {
      std::lock_guard<std::mutex> lock(fds_mutex);
      for (std::size_t i = 0; i < live_fds.size(); ++i) {
        if (live_fds[i] == fd) {
          live_fds.erase(live_fds.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    ::close(fd);
  }

  /// One direction of one connection: pull from `from`, replay the chaos
  /// schedule, push to `to`. Owns neither fd; close/half-close is
  /// coordinated through shutdown() so both directions see it.
  void forward(int from, int to, chaos::ChaosStream stream) {
    if (stream.trickling()) st_trickles.fetch_add(1, std::memory_order_relaxed);
    std::array<char, 65536> buf;
    for (;;) {
      const ssize_t n = recv_retry(from, buf.data(), buf.size());
      if (n <= 0) break;  // EOF, peer reset, or stop() shutdown
      std::size_t off = 0;
      auto remaining = static_cast<std::size_t>(n);
      while (remaining > 0) {
        const chaos::ChaosOp op = stream.plan(remaining);
        if (op.disconnect) {
          // Mid-request kill: both peers observe an abrupt close.
          st_disconnects.fetch_add(1, std::memory_order_relaxed);
          ::shutdown(from, SHUT_RDWR);
          ::shutdown(to, SHUT_RDWR);
          return;
        }
        if (op.delay_ms > 0.0 && !stopping.load(std::memory_order_relaxed)) {
          st_delays.fetch_add(1, std::memory_order_relaxed);
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(op.delay_ms));
        }
        const std::size_t chunk = op.bytes < remaining ? op.bytes : remaining;
        if (!send_all(to, buf.data() + off, chunk)) return;
        st_bytes.fetch_add(chunk, std::memory_order_relaxed);
        st_chunks.fetch_add(1, std::memory_order_relaxed);
        off += chunk;
        remaining -= chunk;
      }
    }
    // Propagate the half-close so the receiver sees EOF once the last
    // forwarded byte lands (the other direction may still be live).
    ::shutdown(to, SHUT_WR);
    ::shutdown(from, SHUT_RD);
  }

  void handle_connection(int client_fd, std::uint64_t conn_index) {
    const int upstream_fd = connect_upstream();
    if (upstream_fd < 0) {
      untrack_and_close(client_fd);
      return;
    }
    track_fd(upstream_fd);
    st_connections.fetch_add(1, std::memory_order_relaxed);
    // Two seeded directions; joined here so the fds outlive both.
    std::thread up([this, client_fd, upstream_fd, conn_index] {
      forward(client_fd, upstream_fd,
              chaos::ChaosStream(options.spec, 2 * conn_index));
    });
    forward(upstream_fd, client_fd,
            chaos::ChaosStream(options.spec, 2 * conn_index + 1));
    up.join();
    untrack_and_close(upstream_fd);
    untrack_and_close(client_fd);
  }

  [[nodiscard]] int connect_upstream() const {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.upstream_port);
    if (::inet_pton(AF_INET, options.upstream_host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
      ::close(fd);
      return -1;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return fd;
  }

  void accept_loop() {
    std::uint64_t conn_index = 0;
    while (!stopping.load(std::memory_order_acquire)) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // listen_fd shut down by stop()
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      track_fd(fd);
      const std::uint64_t index = conn_index++;
      std::lock_guard<std::mutex> lock(threads_mutex);
      forwarders.emplace_back(
          [this, fd, index] { handle_connection(fd, index); });
    }
  }
};

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

ChaosProxy::~ChaosProxy() {
  wait();
  if (impl_->listen_fd >= 0) ::close(impl_->listen_fd);
}

Status ChaosProxy::start() {
  Impl& s = *impl_;
  s.listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (s.listen_fd < 0)
    return Status(StatusCode::kIoError,
                  "socket: " + std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(s.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(s.options.port);
  if (::inet_pton(AF_INET, s.options.host.c_str(), &addr.sin_addr) != 1)
    return Status(StatusCode::kBadInput,
                  "unparseable host '" + s.options.host + "'");
  if (::bind(s.listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0)
    return Status(StatusCode::kIoError,
                  "bind " + s.options.host + ":" +
                      std::to_string(s.options.port) + ": " +
                      std::string(std::strerror(errno)));
  if (::listen(s.listen_fd, SOMAXCONN) != 0)
    return Status(StatusCode::kIoError,
                  "listen: " + std::string(std::strerror(errno)));

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(s.listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    return Status(StatusCode::kIoError,
                  "getsockname: " + std::string(std::strerror(errno)));
  s.bound_port = ntohs(bound.sin_port);

  s.accept_thread = std::thread([this] { impl_->accept_loop(); });
  return Status();
}

std::uint16_t ChaosProxy::port() const { return impl_->bound_port; }

void ChaosProxy::stop() {
  Impl& s = *impl_;
  if (s.stopping.exchange(true, std::memory_order_acq_rel)) return;
  if (s.listen_fd >= 0) ::shutdown(s.listen_fd, SHUT_RDWR);
  // ntr-blocking-in-lane(proxy teardown path; lanes reach it only via a stop() name collision)
  std::lock_guard<std::mutex> lock(s.fds_mutex);
  for (const int fd : s.live_fds) ::shutdown(fd, SHUT_RDWR);
}

void ChaosProxy::wait() {
  stop();
  Impl& s = *impl_;
  if (s.accept_thread.joinable()) s.accept_thread.join();
  // The accept thread is joined, so no new forwarders can appear.
  std::vector<std::thread> threads;
  {
    // ntr-blocking-in-lane(proxy join path; lanes reach it only via a wait() name collision)
    std::lock_guard<std::mutex> lock(s.threads_mutex);
    threads.swap(s.forwarders);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
}

ChaosProxyStats ChaosProxy::stats() const {
  const Impl& s = *impl_;
  ChaosProxyStats out;
  out.connections = s.st_connections.load(std::memory_order_relaxed);
  out.bytes_forwarded = s.st_bytes.load(std::memory_order_relaxed);
  out.chunks_forwarded = s.st_chunks.load(std::memory_order_relaxed);
  out.injected_disconnects = s.st_disconnects.load(std::memory_order_relaxed);
  out.injected_delays = s.st_delays.load(std::memory_order_relaxed);
  out.trickle_streams = s.st_trickles.load(std::memory_order_relaxed);
  return out;
}

}  // namespace ntr::serve
