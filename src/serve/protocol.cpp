#include "serve/protocol.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "io/cli.h"

namespace ntr::serve {

using runtime::Status;
using runtime::StatusCode;

namespace {

Status bad_request(const std::string& why) {
  return Status(StatusCode::kBadInput, "request: " + why);
}

/// Saturating double-to-integral conversion for wire values. A direct
/// static_cast is undefined behavior when the double is NaN or outside
/// the target's range, and every number here arrives from an untrusted
/// peer; saturation keeps a hostile or buggy document from turning into
/// UB while preserving every in-range value exactly.
template <typename T>
T narrow_wire(double v) {
  constexpr double lo = static_cast<double>(std::numeric_limits<T>::lowest());
  constexpr double hi = static_cast<double>(std::numeric_limits<T>::max());
  if (!(v > lo)) return std::numeric_limits<T>::lowest();  // also NaN
  if (v >= hi) return std::numeric_limits<T>::max();
  return static_cast<T>(v);
}

/// Fetches an optional finite number field; `fallback` when absent.
Status get_number(const Json& doc, const char* key, double fallback,
                  double& out) {
  const Json* v = doc.find(key);
  if (v == nullptr) {
    out = fallback;
    return Status::ok_status();
  }
  if (!v->is_number())
    return bad_request(std::string(key) + " must be a number");
  out = v->as_number();
  return Status::ok_status();
}

}  // namespace

runtime::StatusOr<Request> parse_request(const Json& doc) {
  if (!doc.is_object()) return bad_request("document must be a JSON object");
  Request req;
  if (const Json* id = doc.find("id")) req.id = *id;

  if (const Json* op = doc.find("op")) {
    if (!op->is_string()) return bad_request("op must be a string");
    const std::string& name = op->as_string();
    if (name == "route")
      req.op = RequestOp::kRoute;
    else if (name == "ping")
      req.op = RequestOp::kPing;
    else if (name == "stats" || name == "health")
      req.op = RequestOp::kStats;
    else if (name == "shutdown")
      req.op = RequestOp::kShutdown;
    else
      return bad_request("unknown op '" + name + "'");
  }
  if (req.op != RequestOp::kRoute) return req;

  if (const Json* mode = doc.find("mode")) {
    if (!mode->is_string()) return bad_request("mode must be a string");
    const std::string& name = mode->as_string();
    if (name == "solve")
      req.mode = RouteMode::kSolve;
    else if (name == "flow")
      req.mode = RouteMode::kFlow;
    else
      return bad_request("unknown mode '" + name + "'");
  }

  if (const Json* net = doc.find("net")) {
    if (!net->is_string()) return bad_request("net must be a string");
    req.nets.push_back(net->as_string());
  }
  if (const Json* nets = doc.find("nets")) {
    if (!nets->is_array()) return bad_request("nets must be an array");
    for (const Json& n : nets->items()) {
      if (!n.is_string()) return bad_request("nets entries must be strings");
      req.nets.push_back(n.as_string());
    }
  }
  if (req.nets.empty()) return bad_request("missing net/nets");

  if (const Json* strategy = doc.find("strategy")) {
    if (!strategy->is_string()) return bad_request("strategy must be a string");
    try {
      req.strategy = io::strategy_from_name(strategy->as_string());
    } catch (const std::exception& e) {
      return bad_request(e.what());
    }
  }
  if (const Json* evaluator = doc.find("evaluator")) {
    if (!evaluator->is_string())
      return bad_request("evaluator must be a string");
    req.evaluator = evaluator->as_string();
    if (req.evaluator != "transient" && req.evaluator != "elmore" &&
        req.evaluator != "graph-elmore" && req.evaluator != "d2m")
      return bad_request("unknown evaluator '" + req.evaluator + "'");
  }
  if (const Json* on_error = doc.find("on_error")) {
    if (!on_error->is_string()) return bad_request("on_error must be a string");
    const std::optional<core::OnError> policy =
        core::on_error_from_name(on_error->as_string());
    if (!policy)
      return bad_request("unknown on_error '" + on_error->as_string() + "'");
    req.on_error = *policy;
  }

  Status s = get_number(doc, "deadline_ms", 0.0, req.deadline_ms);
  if (!s.ok()) return s;
  if (req.deadline_ms < 0.0) return bad_request("deadline_ms must be >= 0");

  double max_edges = -1.0;
  s = get_number(doc, "max_edges", -1.0, max_edges);
  if (!s.ok()) return s;
  // Clamp before the narrowing cast: a wire double above what size_t can
  // hold is undefined behavior to convert, and 1e15 added edges is "no
  // limit" for any design the solver could ever see.
  if (max_edges >= 0.0)
    req.max_edges = static_cast<std::size_t>(std::min(max_edges, 1e15));

  s = get_number(doc, "clock_period_s", req.clock_period_s, req.clock_period_s);
  if (!s.ok()) return s;
  if (req.clock_period_s <= 0.0)
    return bad_request("clock_period_s must be > 0");

  s = get_number(doc, "debug_wedge_ms", 0.0, req.debug_wedge_ms);
  if (!s.ok()) return s;
  if (req.debug_wedge_ms < 0.0)
    return bad_request("debug_wedge_ms must be >= 0");

  return req;
}

const char* response_status_name(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk: return "ok";
    case ResponseStatus::kDegraded: return "degraded";
    case ResponseStatus::kQuarantined: return "quarantined";
    case ResponseStatus::kBadRequest: return "bad-request";
    case ResponseStatus::kBadInput: return "bad-input";
    case ResponseStatus::kOverloaded: return "overloaded";
    case ResponseStatus::kShuttingDown: return "shutting-down";
    case ResponseStatus::kTimeout: return "timeout";
    case ResponseStatus::kCancelled: return "cancelled";
    case ResponseStatus::kNumerical: return "numerical";
    case ResponseStatus::kInternal: return "internal";
  }
  return "internal";
}

std::optional<ResponseStatus> response_status_from_name(std::string_view name) {
  for (const ResponseStatus s :
       {ResponseStatus::kOk, ResponseStatus::kDegraded,
        ResponseStatus::kQuarantined, ResponseStatus::kBadRequest,
        ResponseStatus::kBadInput, ResponseStatus::kOverloaded,
        ResponseStatus::kShuttingDown, ResponseStatus::kTimeout,
        ResponseStatus::kCancelled, ResponseStatus::kNumerical,
        ResponseStatus::kInternal}) {
    if (name == response_status_name(s)) return s;
  }
  return std::nullopt;
}

int response_code(ResponseStatus s) {
  switch (s) {
    case ResponseStatus::kOk:
    case ResponseStatus::kDegraded:
      return io::kExitOk;  // a routing shipped, as the CLI under degrade
    case ResponseStatus::kBadRequest:
      return io::kExitUsage;
    case ResponseStatus::kBadInput:
      return io::kExitInput;
    case ResponseStatus::kQuarantined:
    case ResponseStatus::kTimeout:
    case ResponseStatus::kCancelled:
    case ResponseStatus::kNumerical:
      return io::kExitNumerical;
    case ResponseStatus::kOverloaded:
    case ResponseStatus::kShuttingDown:
    case ResponseStatus::kInternal:
      return io::kExitInternal;  // retryable server-side refusals
  }
  return io::kExitInternal;
}

ResponseStatus status_from_error(const runtime::Status& error) {
  switch (error.code()) {
    case StatusCode::kOk:
      return ResponseStatus::kOk;
    case StatusCode::kBadInput:
    case StatusCode::kIoError:
      return ResponseStatus::kBadInput;
    case StatusCode::kTimeout:
      return ResponseStatus::kTimeout;
    case StatusCode::kCancelled:
      return ResponseStatus::kCancelled;
    case StatusCode::kSingular:
    case StatusCode::kNonFinite:
      return ResponseStatus::kNumerical;
    case StatusCode::kUnavailable:
    case StatusCode::kConnectionReset:
      // Transport-level failures surfacing through a handler: the peer
      // can retry, which is exactly what `overloaded` promises.
      return ResponseStatus::kOverloaded;
    case StatusCode::kResourceExhausted:
    case StatusCode::kInternal:
      return ResponseStatus::kInternal;
  }
  return ResponseStatus::kInternal;
}

ResponseStatus status_from_outcome(const core::NetOutcome& outcome) {
  switch (outcome.disposition) {
    case core::NetDisposition::kOk:
      return ResponseStatus::kOk;
    case core::NetDisposition::kDegraded:
      return ResponseStatus::kDegraded;
    case core::NetDisposition::kQuarantined:
      return ResponseStatus::kQuarantined;
  }
  return ResponseStatus::kInternal;
}

const char* response_kind_name(ResponseKind k) {
  switch (k) {
    case ResponseKind::kNet: return "net";
    case ResponseKind::kSummary: return "summary";
    case ResponseKind::kPong: return "pong";
    case ResponseKind::kStats: return "stats";
    case ResponseKind::kShutdown: return "shutdown";
    case ResponseKind::kError: return "error";
  }
  return "error";
}

std::optional<ResponseKind> response_kind_from_name(std::string_view name) {
  for (const ResponseKind k :
       {ResponseKind::kNet, ResponseKind::kSummary, ResponseKind::kPong,
        ResponseKind::kStats, ResponseKind::kShutdown, ResponseKind::kError}) {
    if (name == response_kind_name(k)) return k;
  }
  return std::nullopt;
}

std::string Response::to_json() const {
  Json doc = Json::object();
  doc.set("id", id);
  doc.set("kind", Json::string(response_kind_name(kind)));
  doc.set("status", Json::string(response_status_name(status)));
  doc.set("code", Json::number(code));
  if (!error.empty()) doc.set("error", Json::string(error));
  if (kind == ResponseKind::kNet) {
    doc.set("net_index", Json::number(static_cast<double>(net_index)));
    doc.set("net_count", Json::number(static_cast<double>(net_count)));
    doc.set("rung", Json::number(rung));
    doc.set("routing", Json::string(routing));
    Json delays = Json::array();
    for (const double d : delays_s) delays.push_back(Json::number(d));
    doc.set("delays", std::move(delays));
    doc.set("wirelength_um", Json::number(wirelength_um));
    doc.set("max_delay_s", Json::number(max_delay_s));
    doc.set("evaluator", Json::string(evaluator));
  } else if (kind == ResponseKind::kSummary) {
    doc.set("net_count", Json::number(static_cast<double>(net_count)));
    doc.set("iterations", Json::number(iterations));
    doc.set("nets_rerouted", Json::number(static_cast<double>(nets_rerouted)));
    doc.set("initial_worst_slack_s", Json::number(initial_worst_slack_s));
    doc.set("worst_slack_s", Json::number(worst_slack_s));
  } else if (kind == ResponseKind::kStats) {
    doc.set("stats", stats);
  } else if (kind == ResponseKind::kError && net_count > 0) {
    // A per-net rejection (e.g. `overloaded` for one net of a batch):
    // indexed so the client can still account for every net it sent.
    doc.set("net_index", Json::number(static_cast<double>(net_index)));
    doc.set("net_count", Json::number(static_cast<double>(net_count)));
  }
  return doc.dump();
}

runtime::StatusOr<Response> Response::from_json(const Json& doc) {
  if (!doc.is_object())
    return Status(StatusCode::kBadInput, "response: not a JSON object");
  Response r;
  if (const Json* id = doc.find("id")) r.id = *id;

  const Json* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string())
    return Status(StatusCode::kBadInput, "response: missing kind");
  const std::optional<ResponseKind> k =
      response_kind_from_name(kind->as_string());
  if (!k)
    return Status(StatusCode::kBadInput,
                  "response: unknown kind '" + kind->as_string() + "'");
  r.kind = *k;

  const Json* status = doc.find("status");
  if (status == nullptr || !status->is_string())
    return Status(StatusCode::kBadInput, "response: missing status");
  const std::optional<ResponseStatus> s =
      response_status_from_name(status->as_string());
  if (!s)
    return Status(StatusCode::kBadInput,
                  "response: unknown status '" + status->as_string() + "'");
  r.status = *s;

  if (const Json* code = doc.find("code"); code != nullptr && code->is_number())
    r.code = narrow_wire<int>(code->as_number());
  if (const Json* err = doc.find("error"); err != nullptr && err->is_string())
    r.error = err->as_string();
  if (const Json* v = doc.find("net_index"); v != nullptr && v->is_number())
    r.net_index = narrow_wire<std::size_t>(v->as_number());
  if (const Json* v = doc.find("net_count"); v != nullptr && v->is_number())
    r.net_count = narrow_wire<std::size_t>(v->as_number());
  if (const Json* v = doc.find("rung"); v != nullptr && v->is_number())
    r.rung = narrow_wire<int>(v->as_number());
  if (const Json* v = doc.find("routing"); v != nullptr && v->is_string())
    r.routing = v->as_string();
  if (const Json* v = doc.find("delays"); v != nullptr && v->is_array()) {
    for (const Json& d : v->items()) {
      if (!d.is_number())
        return Status(StatusCode::kBadInput, "response: non-numeric delay");
      r.delays_s.push_back(d.as_number());
    }
  }
  if (const Json* v = doc.find("wirelength_um"); v != nullptr && v->is_number())
    r.wirelength_um = v->as_number();
  if (const Json* v = doc.find("max_delay_s"); v != nullptr && v->is_number())
    r.max_delay_s = v->as_number();
  if (const Json* v = doc.find("evaluator"); v != nullptr && v->is_string())
    r.evaluator = v->as_string();
  if (const Json* v = doc.find("iterations"); v != nullptr && v->is_number())
    r.iterations = narrow_wire<unsigned>(v->as_number());
  if (const Json* v = doc.find("nets_rerouted"); v != nullptr && v->is_number())
    r.nets_rerouted = narrow_wire<std::size_t>(v->as_number());
  if (const Json* v = doc.find("initial_worst_slack_s");
      v != nullptr && v->is_number())
    r.initial_worst_slack_s = v->as_number();
  if (const Json* v = doc.find("worst_slack_s"); v != nullptr && v->is_number())
    r.worst_slack_s = v->as_number();
  if (const Json* v = doc.find("stats")) r.stats = *v;
  return r;
}

const char* strategy_wire_name(core::Strategy s) {
  switch (s) {
    case core::Strategy::kMst: return "mst";
    case core::Strategy::kStar: return "star";
    case core::Strategy::kSteinerTree: return "steiner";
    case core::Strategy::kErt: return "ert";
    case core::Strategy::kSert: return "sert";
    case core::Strategy::kLdrg: return "ldrg";
    case core::Strategy::kSldrg: return "sldrg";
    case core::Strategy::kErtLdrg: return "ert-ldrg";
    case core::Strategy::kH1: return "h1";
    case core::Strategy::kH2: return "h2";
    case core::Strategy::kH3: return "h3";
  }
  return "ldrg";
}

Json request_to_json(const Request& req) {
  Json doc = Json::object();
  if (!req.id.is_null()) doc.set("id", req.id);
  switch (req.op) {
    case RequestOp::kRoute: doc.set("op", Json::string("route")); break;
    case RequestOp::kPing: doc.set("op", Json::string("ping")); break;
    case RequestOp::kStats: doc.set("op", Json::string("stats")); break;
    case RequestOp::kShutdown: doc.set("op", Json::string("shutdown")); break;
  }
  if (req.op != RequestOp::kRoute) return doc;
  doc.set("mode", Json::string(req.mode == RouteMode::kFlow ? "flow" : "solve"));
  Json nets = Json::array();
  for (const std::string& n : req.nets) nets.push_back(Json::string(n));
  doc.set("nets", std::move(nets));
  doc.set("strategy", Json::string(strategy_wire_name(req.strategy)));
  doc.set("evaluator", Json::string(req.evaluator));
  doc.set("on_error", Json::string(core::on_error_name(req.on_error)));
  if (req.deadline_ms > 0.0) doc.set("deadline_ms", Json::number(req.deadline_ms));
  if (req.max_edges != static_cast<std::size_t>(-1))
    doc.set("max_edges", Json::number(static_cast<double>(req.max_edges)));
  if (req.mode == RouteMode::kFlow)
    doc.set("clock_period_s", Json::number(req.clock_period_s));
  if (req.debug_wedge_ms > 0.0)
    doc.set("debug_wedge_ms", Json::number(req.debug_wedge_ms));
  return doc;
}

Response make_error_response(const Json& id, ResponseStatus status,
                             std::string detail) {
  Response r;
  r.id = id;
  r.kind = ResponseKind::kError;
  r.status = status;
  r.code = response_code(status);
  r.error = std::move(detail);
  return r;
}

}  // namespace ntr::serve
