#include "flow/timing_flow.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include "core/parallel.h"

namespace ntr::flow {

namespace {

void validate(const sta::TimingGraph& design, const std::vector<BoundNet>& nets) {
  for (const BoundNet& b : nets) {
    b.net.validate();
    if (b.sta_net >= design.net_count())
      throw std::invalid_argument("run_timing_flow: bad STA net for " + b.name);
    if (b.sink_gates.size() != b.net.sink_count())
      throw std::invalid_argument(
          "run_timing_flow: sink_gates must match the net's sinks for " + b.name);
    const auto& sta_sinks = design.net(b.sta_net).sinks;
    for (const sta::GateId g : b.sink_gates) {
      if (std::find(sta_sinks.begin(), sta_sinks.end(), g) == sta_sinks.end())
        throw std::invalid_argument("run_timing_flow: gate is not a sink of " +
                                    b.name);
    }
  }
}

/// Measures a routing and pushes its per-sink delays into the design.
void annotate(sta::TimingGraph& design, const BoundNet& bound,
              const graph::RoutingGraph& routing,
              const delay::DelayEvaluator& measure) {
  const std::vector<double> delays = measure.sink_delays(routing);
  for (std::size_t i = 0; i < bound.sink_gates.size(); ++i)
    design.set_interconnect_delay(bound.sta_net, bound.sink_gates[i], delays[i]);
}

}  // namespace

FlowResult run_timing_flow(sta::TimingGraph& design, std::vector<BoundNet>& nets,
                           const delay::DelayEvaluator& measure,
                           const FlowOptions& options) {
  validate(design, nets);

  FlowResult result;
  result.routings.reserve(nets.size());
  for (const BoundNet& b : nets) {
    result.routings.push_back(graph::mst_routing(b.net));
    annotate(design, b, result.routings.back(), measure);
  }
  result.initial_report = sta::analyze(design, options.clock_period_s);
  result.final_report = result.initial_report;

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    // Which nets hold critical pins under the current timing?
    std::vector<std::size_t> targets;
    std::vector<std::vector<double>> alphas;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      std::vector<double> alpha =
          sta::sink_criticalities(design, result.final_report, nets[i].sta_net);
      // Map from the STA net's sink order to the bound net's sink order.
      // sink_criticalities is indexed by the STA net's sinks; re-project
      // onto this net's sink_gates.
      const auto& sta_sinks = design.net(nets[i].sta_net).sinks;
      std::vector<double> projected(nets[i].sink_gates.size(), 0.0);
      for (std::size_t k = 0; k < nets[i].sink_gates.size(); ++k) {
        for (std::size_t s = 0; s < sta_sinks.size(); ++s) {
          if (sta_sinks[s] == nets[i].sink_gates[k]) {
            projected[k] = alpha[s];
            break;
          }
        }
      }
      const double worst =
          projected.empty()
              ? 0.0
              : *std::max_element(projected.begin(), projected.end());
      if (worst >= options.criticality_threshold) {
        targets.push_back(i);
        alphas.push_back(std::move(projected));
      }
    }
    if (targets.empty()) break;

    result.iterations = iter + 1;
    // Each critical net is an independent CSORG problem: reroute them on
    // parallel lanes (static chunking keeps the assignment deterministic),
    // then annotate the shared timing graph serially in input order.
    std::vector<graph::RoutingGraph> rerouted(targets.size());
    {
      const std::size_t lanes = options.parallel.resolved_threads();
      std::unique_ptr<core::ThreadPool> pool;
      if (lanes > 1 && targets.size() > 1)
        pool = std::make_unique<core::ThreadPool>(lanes);
      core::parallel_chunks(
          pool.get(), targets.size(),
          [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
              core::LdrgOptions ldrg_opts = options.ldrg;
              ldrg_opts.criticality = alphas[k];
              rerouted[k] = core::ldrg(graph::mst_routing(nets[targets[k]].net),
                                       measure, ldrg_opts)
                                .graph;
            }
          });
    }
    for (std::size_t k = 0; k < targets.size(); ++k) {
      const std::size_t i = targets[k];
      result.routings[i] = std::move(rerouted[k]);
      annotate(design, nets[i], result.routings[i], measure);
      ++result.nets_rerouted;
    }

    const sta::TimingReport report = sta::analyze(design, options.clock_period_s);
    const bool improved = report.worst_slack_s > result.final_report.worst_slack_s;
    result.final_report = report;
    if (!improved) break;
  }
  return result;
}

}  // namespace ntr::flow
