#include "flow/timing_flow.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>
#include <utility>

#include "core/parallel.h"
#include "runtime/stop.h"
#include "runtime/status.h"

namespace ntr::flow {

namespace {

void validate(const sta::TimingGraph& design, const std::vector<BoundNet>& nets) {
  for (const BoundNet& b : nets) {
    b.net.validate();
    if (b.sta_net >= design.net_count())
      throw std::invalid_argument("run_timing_flow: bad STA net for " + b.name);
    if (b.sink_gates.size() != b.net.sink_count())
      throw std::invalid_argument(
          "run_timing_flow: sink_gates must match the net's sinks for " + b.name);
    const auto& sta_sinks = design.net(b.sta_net).sinks;
    for (const sta::GateId g : b.sink_gates) {
      if (std::find(sta_sinks.begin(), sta_sinks.end(), g) == sta_sinks.end())
        throw std::invalid_argument("run_timing_flow: gate is not a sink of " +
                                    b.name);
    }
  }
}

/// Measures a routing and pushes its per-sink delays into the design.
void annotate(sta::TimingGraph& design, const BoundNet& bound,
              const graph::RoutingGraph& routing,
              const delay::DelayEvaluator& measure) {
  const std::vector<double> delays = measure.sink_delays(routing);
  for (std::size_t i = 0; i < bound.sink_gates.size(); ++i)
    design.set_interconnect_delay(bound.sta_net, bound.sink_gates[i], delays[i]);
}

/// Folds one failure into a net's record: the first failure owns the
/// status, and the disposition/rung only ever worsen.
void record_failure(core::NetOutcome& outcome, core::NetDisposition disposition,
                    int rung, const runtime::Status& status) {
  if (outcome.status.ok()) outcome.status = status;
  if (static_cast<int>(disposition) > static_cast<int>(outcome.disposition)) {
    outcome.disposition = disposition;
    outcome.rung = rung;
  }
}

/// annotate() with the per-net ladder: primary measure, then graph
/// Elmore, then leave the previous annotation standing (quarantine).
/// Under OnError::kFail the primary failure is rethrown. Returns false
/// only when even the Elmore fallback failed.
bool annotate_resilient(sta::TimingGraph& design, const BoundNet& bound,
                        const graph::RoutingGraph& routing,
                        const delay::DelayEvaluator& measure,
                        const delay::GraphElmoreEvaluator& elmore,
                        core::OnError policy, core::NetOutcome& outcome) {
  try {
    annotate(design, bound, routing, measure);
    return true;
  } catch (const std::exception& e) {
    if (policy == core::OnError::kFail) throw;
    const runtime::Status status = runtime::exception_to_status(e);
    if (policy == core::OnError::kSkip) {
      record_failure(outcome, core::NetDisposition::kQuarantined, 0, status);
      return false;
    }
    record_failure(outcome, core::NetDisposition::kDegraded, 1, status);
  }
  try {
    annotate(design, bound, routing, elmore);
    return true;
  } catch (const std::exception& e) {
    record_failure(outcome, core::NetDisposition::kQuarantined, 1,
                   runtime::exception_to_status(e));
    return false;
  }
}

}  // namespace

FlowResult run_timing_flow(sta::TimingGraph& design, std::vector<BoundNet>& nets,
                           const delay::DelayEvaluator& measure,
                           const FlowOptions& options) {
  validate(design, nets);

  const core::OnError policy = options.resilience.on_error;
  const runtime::StopToken& stop = options.resilience.stop;
  const bool stop_engaged = stop.engaged();
  const delay::GraphElmoreEvaluator elmore(options.tech);

  FlowResult result;
  result.outcomes.resize(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    result.outcomes[i].net_index = i;
    result.outcomes[i].net_name = nets[i].name;
  }

  result.routings.reserve(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const BoundNet& b = nets[i];
    // MST construction is pure geometry and cannot fail; measurement can.
    result.routings.push_back(graph::mst_routing(b.net));
    if (stop_engaged && stop.poll() != runtime::StatusCode::kOk) {
      if (policy == core::OnError::kFail)
        stop.throw_if_stopped("timing flow initial pass");
      // Budget spent: annotate the remaining nets with the cheap Elmore
      // model so the batch still completes with every net accounted for.
      record_failure(result.outcomes[i], core::NetDisposition::kDegraded, 1,
                     runtime::Status(stop.poll(),
                                     "timing flow initial pass: budget spent "
                                     "before net " +
                                         b.name));
      try {
        annotate(design, b, result.routings.back(), elmore);
      } catch (const std::exception& e) {
        record_failure(result.outcomes[i], core::NetDisposition::kQuarantined, 1,
                       runtime::exception_to_status(e));
      }
      continue;
    }
    annotate_resilient(design, b, result.routings.back(), measure, elmore,
                       policy, result.outcomes[i]);
  }
  result.initial_report = sta::analyze(design, options.clock_period_s);
  result.final_report = result.initial_report;

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    if (stop_engaged && stop.poll() != runtime::StatusCode::kOk) {
      // Out of budget at an iteration boundary: every routing is valid and
      // annotated, so stopping the optimization here degrades nothing.
      if (policy == core::OnError::kFail)
        stop.throw_if_stopped("timing flow iteration");
      break;
    }

    // Which nets hold critical pins under the current timing?
    std::vector<std::size_t> targets;
    std::vector<std::vector<double>> alphas;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      std::vector<double> alpha =
          sta::sink_criticalities(design, result.final_report, nets[i].sta_net);
      // Map from the STA net's sink order to the bound net's sink order.
      // sink_criticalities is indexed by the STA net's sinks; re-project
      // onto this net's sink_gates.
      const auto& sta_sinks = design.net(nets[i].sta_net).sinks;
      std::vector<double> projected(nets[i].sink_gates.size(), 0.0);
      for (std::size_t k = 0; k < nets[i].sink_gates.size(); ++k) {
        for (std::size_t s = 0; s < sta_sinks.size(); ++s) {
          if (sta_sinks[s] == nets[i].sink_gates[k]) {
            projected[k] = alpha[s];
            break;
          }
        }
      }
      const double worst =
          projected.empty()
              ? 0.0
              : *std::max_element(projected.begin(), projected.end());
      if (worst >= options.criticality_threshold) {
        targets.push_back(i);
        alphas.push_back(std::move(projected));
      }
    }
    if (targets.empty()) break;

    result.iterations = iter + 1;
    // Each critical net is an independent CSORG problem: reroute them on
    // parallel lanes (static chunking keeps the assignment deterministic),
    // then annotate the shared timing graph serially in input order. A
    // lane catches its own nets' failures -- one bad matrix must not take
    // down the other lanes' work -- and leaves the fallback decision to
    // the serial pass below.
    std::vector<graph::RoutingGraph> rerouted(targets.size());
    std::vector<runtime::Status> lane_status(targets.size());
    {
      const std::size_t lanes = options.parallel.resolved_threads();
      std::unique_ptr<core::ThreadPool> pool;
      if (lanes > 1 && targets.size() > 1)
        pool = std::make_unique<core::ThreadPool>(lanes);
      core::parallel_chunks(
          pool.get(), targets.size(),
          [&](std::size_t, std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
              try {
                core::LdrgOptions ldrg_opts = options.ldrg;
                ldrg_opts.criticality = alphas[k];
                ldrg_opts.stop = stop;
                rerouted[k] = core::ldrg(graph::mst_routing(nets[targets[k]].net),
                                         measure, ldrg_opts)
                                  .graph;
              } catch (const std::exception& e) {
                lane_status[k] = runtime::exception_to_status(e);
              }
            }
          });
    }
    for (std::size_t k = 0; k < targets.size(); ++k) {
      const std::size_t i = targets[k];
      if (!lane_status[k].ok()) {
        if (policy == core::OnError::kFail)
          throw runtime::NtrError(lane_status[k].code(), lane_status[k].message());
        if (policy == core::OnError::kSkip) {
          // Keep the net's current (valid, annotated) routing untouched.
          record_failure(result.outcomes[i], core::NetDisposition::kQuarantined,
                         0, lane_status[k]);
          continue;
        }
        record_failure(result.outcomes[i], core::NetDisposition::kDegraded, 1,
                       lane_status[k]);
        // Rung 1: Elmore-driven reroute, still deadline-bounded (it fails
        // in one poll when the budget is already spent).
        try {
          core::LdrgOptions ldrg_opts = options.ldrg;
          ldrg_opts.criticality = alphas[k];
          ldrg_opts.stop = stop;
          rerouted[k] =
              core::ldrg(graph::mst_routing(nets[i].net), elmore, ldrg_opts).graph;
        } catch (const std::exception&) {
          // Rung 2: keep the seed tree -- always valid, never times out.
          record_failure(result.outcomes[i], core::NetDisposition::kDegraded, 2,
                         lane_status[k]);
          rerouted[k] = graph::mst_routing(nets[i].net);
        }
      }
      result.routings[i] = std::move(rerouted[k]);
      annotate_resilient(design, nets[i], result.routings[i], measure, elmore,
                         policy, result.outcomes[i]);
      ++result.nets_rerouted;
    }

    const sta::TimingReport report = sta::analyze(design, options.clock_period_s);
    const bool improved = report.worst_slack_s > result.final_report.worst_slack_s;
    result.final_report = report;
    if (!improved) break;
  }
  return result;
}

}  // namespace ntr::flow
