#pragma once

#include <string>
#include <vector>

#include "core/ldrg.h"
#include "core/parallel.h"
#include "core/resilience.h"
#include "delay/evaluator.h"
#include "graph/net.h"
#include "graph/routing_graph.h"
#include "spice/technology.h"
#include "sta/timing_graph.h"

namespace ntr::flow {

/// A signal net bound to the timing graph: geometry (pins, source first)
/// plus which STA net it realizes and which gate reads each sink pin.
struct BoundNet {
  std::string name;
  graph::Net net;
  sta::NetId sta_net = sta::kNoId;
  /// Aligned with net sinks (pins[1..k] -> sink_gates[0..k-1]).
  std::vector<sta::GateId> sink_gates;
};

struct FlowOptions {
  spice::Technology tech{};
  double clock_period_s = 5e-9;
  /// A net is re-routed when any of its sink pins has criticality
  /// (= max(0, (period - slack)/period)) at or above this threshold.
  double criticality_threshold = 0.8;
  /// Timing-convergence iterations (route -> STA -> reroute ...).
  unsigned max_iterations = 3;
  core::LdrgOptions ldrg{};
  /// Reroute-stage thread count: the critical nets of one iteration are
  /// independent CSORG problems, so they are rerouted on parallel lanes
  /// and re-annotated serially in input order -- the flow result is
  /// bit-identical for every lane count. The inner LDRG scans stay on
  /// ldrg.parallel (serial by default) to avoid nested pools.
  core::ParallelConfig parallel{};
  /// Per-net fault tolerance. resilience.stop bounds the whole flow (it
  /// is threaded into every reroute's LDRG loop and polled at net and
  /// iteration boundaries); failures walk the measure -> graph-Elmore ->
  /// keep-seed-tree ladder per net instead of aborting the batch, except
  /// under OnError::kFail, which rethrows the first failure.
  core::ResilienceOptions resilience{};
};

struct FlowResult {
  /// Final routing per bound net, in input order.
  std::vector<graph::RoutingGraph> routings;
  sta::TimingReport initial_report;  ///< after the MST pass
  sta::TimingReport final_report;
  unsigned iterations = 0;       ///< reroute iterations actually run
  std::size_t nets_rerouted = 0; ///< total reroute operations
  /// One record per bound net, in input order: which evaluator/routing
  /// rung stands behind routings[i] and the first failure (if any) that
  /// forced a fallback. All-kOk in a fault-free, deadline-free run.
  std::vector<core::NetOutcome> outcomes;
};

/// The timing-driven routing loop the paper's Section 5.1 sketches,
/// packaged end to end:
///
///   1. route every bound net as an MST; measure per-sink interconnect
///      delays with `measure` and annotate the timing graph,
///   2. STA: arrivals, slacks, per-pin criticalities,
///   3. re-route every net holding a critical pin with CSORG-weighted
///      LDRG (criticalities as the alpha vector); re-annotate,
///   4. repeat 2-3 until no net qualifies, nothing improves the worst
///      slack, or max_iterations is reached.
///
/// The design's interconnect delays are left annotated with the final
/// routing (so callers can keep analyzing it). Throws
/// std::invalid_argument on inconsistent bindings (a caller bug, not a
/// per-net condition); per-net numerical/timeout failures are absorbed by
/// the degradation ladder (see FlowOptions::resilience) unless the policy
/// is OnError::kFail.
FlowResult run_timing_flow(sta::TimingGraph& design, std::vector<BoundNet>& nets,
                           const delay::DelayEvaluator& measure,
                           const FlowOptions& options = {});

}  // namespace ntr::flow
