#include "steiner/iterated_one_steiner.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "check/contracts.h"
#include "graph/validate.h"
#include "geom/hanan.h"
#include "graph/mst.h"

namespace ntr::steiner {

namespace {

double mst_cost(std::span<const geom::Point> points) {
  const std::vector<graph::IndexEdge> edges = graph::prim_mst(points);
  return graph::edges_cost(points, edges);
}

/// Degrees of each point in the MST of `points`.
std::vector<std::size_t> mst_degrees(std::span<const geom::Point> points) {
  std::vector<std::size_t> deg(points.size(), 0);
  for (const auto& [u, v] : graph::prim_mst(points)) {
    ++deg[u];
    ++deg[v];
  }
  return deg;
}

}  // namespace

double one_steiner_gain(std::vector<geom::Point> points, const geom::Point& candidate) {
  const double before = mst_cost(points);
  points.push_back(candidate);
  const double after = mst_cost(points);
  return before - after;
}

SteinerResult iterated_one_steiner(const graph::Net& net, const SteinerOptions& options) {
  net.validate();

  std::vector<geom::Point> augmented = net.pins;  // pins followed by Steiner points
  std::vector<geom::Point> chosen;

  // Candidates come from the Hanan grid of the *original* pins: Hanan's
  // theorem covers the optimal rectilinear Steiner tree with this set.
  const std::vector<geom::Point> candidates = geom::hanan_grid(net.pins);

  while (options.max_steiner_points == 0 || chosen.size() < options.max_steiner_points) {
    const double current_cost = mst_cost(augmented);
    const double min_gain = std::max(options.min_relative_gain * current_cost, 0.0);

    // Best single candidate this round.
    double best_gain = min_gain;
    const geom::Point* best = nullptr;
    std::unordered_set<geom::Point> used(augmented.begin(), augmented.end());
    for (const geom::Point& c : candidates) {
      if (used.contains(c)) continue;
      std::vector<geom::Point> with = augmented;
      with.push_back(c);
      const double gain = current_cost - mst_cost(with);
      if (gain > best_gain) {
        best_gain = gain;
        best = &c;
      }
    }
    if (best == nullptr) break;

    augmented.push_back(*best);
    chosen.push_back(*best);

    // Prune Steiner points that the new MST uses with degree <= 2: a
    // degree-2 Steiner point never shortens a rectilinear MST, and a
    // degree-<=1 point is dead weight.
    for (bool pruned = true; pruned;) {
      pruned = false;
      const std::vector<std::size_t> deg = mst_degrees(augmented);
      for (std::size_t i = augmented.size(); i-- > net.pins.size();) {
        if (deg[i] <= 2) {
          const geom::Point victim = augmented[i];
          augmented.erase(augmented.begin() + static_cast<std::ptrdiff_t>(i));
          std::erase(chosen, victim);
          pruned = true;
          break;  // degrees are stale after erase; recompute
        }
      }
    }
  }

  // Materialize the routing graph: net nodes first, then Steiner nodes.
  SteinerResult result;
  result.steiner_points = chosen;
  result.graph = graph::RoutingGraph(net);
  for (const geom::Point& s : chosen)
    result.graph.add_node(s, graph::NodeKind::kSteiner);
  for (const auto& [u, v] : graph::prim_mst(augmented)) result.graph.add_edge(u, v);

  // An MST over the augmented point set spans pins + surviving Steiner
  // points as a tree; pruning above removed every degree-<=2 Steiner point.
  NTR_CHECK(result.graph.is_tree());
  NTR_DCHECK(check::require(
      graph::validate_graph(result.graph,
                            {.require_source = true, .require_connected = true}),
      "iterated_one_steiner postcondition"));
  return result;
}

ExactSteinerResult exact_steiner_tree(const graph::Net& net,
                                      std::size_t max_steiner_points,
                                      std::size_t max_pins_guard) {
  net.validate();
  if (net.size() > max_pins_guard)
    throw std::invalid_argument(
        "exact_steiner_tree: net too large for brute force (raise the guard "
        "explicitly if you really mean it)");

  const std::vector<geom::Point> candidates = geom::hanan_grid(net.pins);
  // A rectilinear SMT on n pins never needs more than n-2 Steiner points.
  const std::size_t budget =
      std::min(max_steiner_points,
               net.size() >= 2 ? net.size() - 2 : std::size_t{0});

  ExactSteinerResult best;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<geom::Point> chosen;

  // Enumerate subsets of size <= budget (combinations via start index),
  // evaluating each by the MST over pins + subset.
  const auto evaluate = [&]() {
    std::vector<geom::Point> points = net.pins;
    points.insert(points.end(), chosen.begin(), chosen.end());
    const double cost = mst_cost(points);
    ++best.trees_evaluated;
    if (cost < best_cost) {
      best_cost = cost;
      best.steiner_points = chosen;
    }
  };
  const auto recurse = [&](auto&& self, std::size_t start) -> void {
    evaluate();
    if (chosen.size() >= budget) return;
    for (std::size_t i = start; i < candidates.size(); ++i) {
      chosen.push_back(candidates[i]);
      self(self, i + 1);
      chosen.pop_back();
    }
  };
  recurse(recurse, 0);

  // Materialize the winning tree (pruning unused Steiner points: keep
  // only those the MST actually uses with degree >= 3).
  std::vector<geom::Point> augmented = net.pins;
  augmented.insert(augmented.end(), best.steiner_points.begin(),
                   best.steiner_points.end());
  for (bool pruned = true; pruned;) {
    pruned = false;
    const std::vector<std::size_t> deg = mst_degrees(augmented);
    for (std::size_t i = augmented.size(); i-- > net.pins.size();) {
      if (deg[i] <= 2) {
        const geom::Point victim = augmented[i];
        augmented.erase(augmented.begin() + static_cast<std::ptrdiff_t>(i));
        std::erase(best.steiner_points, victim);
        pruned = true;
        break;
      }
    }
  }
  best.graph = graph::RoutingGraph(net);
  for (const geom::Point& s : best.steiner_points)
    best.graph.add_node(s, graph::NodeKind::kSteiner);
  for (const auto& [u, v] : graph::prim_mst(augmented)) best.graph.add_edge(u, v);
  NTR_CHECK(best.graph.is_tree());
  NTR_DCHECK(check::require(
      graph::validate_graph(best.graph,
                            {.require_source = true, .require_connected = true}),
      "exact_steiner_tree postcondition"));
  return best;
}

}  // namespace ntr::steiner
