#pragma once

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "graph/net.h"
#include "graph/routing_graph.h"

namespace ntr::steiner {

struct SteinerOptions {
  /// Upper bound on Steiner points added (the Iterated 1-Steiner loop
  /// rarely needs more than the sink count). 0 means "no bound".
  std::size_t max_steiner_points = 0;
  /// Gains below this fraction of the current tree cost are treated as
  /// zero, guaranteeing termination in the presence of floating-point
  /// noise.
  double min_relative_gain = 1e-12;
};

struct SteinerResult {
  /// Steiner points actually used, in insertion order.
  std::vector<geom::Point> steiner_points;
  /// Routing tree over net pins + Steiner points: node 0 is the source,
  /// nodes 1..k the sinks, then the Steiner nodes; edges form the MST of
  /// the augmented point set.
  graph::RoutingGraph graph;
};

/// Iterated 1-Steiner heuristic of Kahng & Robins (the algorithm the paper
/// names for step 1 of SLDRG, refs [2,3,13]):
/// repeatedly add the Hanan-grid candidate that maximizes the MST cost
/// reduction of the augmented point set, pruning Steiner points whose MST
/// degree drops to 2 or below, until no candidate yields a positive gain.
SteinerResult iterated_one_steiner(const graph::Net& net,
                                   const SteinerOptions& options = {});

/// MST cost reduction obtained by adding a single extra point (the "1-Steiner
/// gain"); exposed for testing and for analysis tools.
double one_steiner_gain(std::vector<geom::Point> points, const geom::Point& candidate);

/// Exact rectilinear Steiner minimal tree for TINY nets, by brute force
/// over all subsets of up to `max_steiner_points` Hanan-grid candidates
/// (Hanan's theorem makes this exhaustive for k <= n-2). Exponential --
/// a ground-truth oracle for testing the Iterated 1-Steiner heuristic,
/// not a router. Throws std::invalid_argument for nets above
/// `max_pins_guard` pins (cost blows up combinatorially).
struct ExactSteinerResult {
  std::vector<geom::Point> steiner_points;
  graph::RoutingGraph graph;
  std::size_t trees_evaluated = 0;
};

ExactSteinerResult exact_steiner_tree(const graph::Net& net,
                                      std::size_t max_steiner_points = 3,
                                      std::size_t max_pins_guard = 7);

}  // namespace ntr::steiner
