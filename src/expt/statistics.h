#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>

namespace ntr::expt {

inline double mean(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("mean: empty sample");
  double s = 0.0;
  for (const double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double sample_stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (const double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

inline double min_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("min_of: empty sample");
  double m = xs[0];
  for (const double x : xs) m = x < m ? x : m;
  return m;
}

inline double max_of(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("max_of: empty sample");
  double m = xs[0];
  for (const double x : xs) m = x > m ? x : m;
  return m;
}

/// Pearson correlation coefficient; used by the fidelity ablation to
/// compare delay models.
inline double pearson_correlation(std::span<const double> a,
                                  std::span<const double> b) {
  if (a.size() != b.size() || a.size() < 2)
    throw std::invalid_argument("pearson_correlation: need matched samples (n>=2)");
  const double ma = mean(a);
  const double mb = mean(b);
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  const double denom = std::sqrt(va * vb);
  if (denom == 0.0) throw std::invalid_argument("pearson_correlation: zero variance");
  return cov / denom;
}

}  // namespace ntr::expt
