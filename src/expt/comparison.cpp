#include "expt/comparison.h"

#include <cmath>
#include <iomanip>
#include <limits>
#include <ostream>

#include "expt/statistics.h"

namespace ntr::expt {

AggregateRow aggregate(std::size_t net_size, std::span<const TrialRecord> trials) {
  AggregateRow row;
  row.net_size = net_size;
  row.trials = trials.size();

  std::vector<double> all_delay, all_cost, win_delay, win_cost;
  for (const TrialRecord& t : trials) {
    all_delay.push_back(t.delay_ratio());
    all_cost.push_back(t.cost_ratio());
    if (t.winner()) {
      win_delay.push_back(t.delay_ratio());
      win_cost.push_back(t.cost_ratio());
    }
  }
  row.all_delay_ratio = mean(all_delay);
  row.all_cost_ratio = mean(all_cost);
  row.all_delay_stddev = sample_stddev(all_delay);
  row.all_cost_stddev = sample_stddev(all_cost);
  row.delay_ci95 =
      1.96 * row.all_delay_stddev / std::sqrt(static_cast<double>(trials.size()));
  row.percent_winners =
      100.0 * static_cast<double>(win_delay.size()) / static_cast<double>(trials.size());
  if (win_delay.empty()) {
    row.winners_delay_ratio = std::numeric_limits<double>::quiet_NaN();
    row.winners_cost_ratio = std::numeric_limits<double>::quiet_NaN();
  } else {
    row.winners_delay_ratio = mean(win_delay);
    row.winners_cost_ratio = mean(win_cost);
  }
  return row;
}

namespace {

void print_ratio(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << std::setw(6) << "NA";
  } else {
    os << std::setw(6) << std::fixed << std::setprecision(2) << v;
  }
}

}  // namespace

void print_paper_table(std::ostream& os, const std::string& title,
                       std::span<const AggregateRow> rows) {
  os << title << "\n";
  os << "  net  |    All Cases    | Percent |   Winners Only\n";
  os << "  size |  Delay    Cost  | Winners |  Delay    Cost\n";
  os << "  -----+-----------------+---------+-----------------\n";
  for (const AggregateRow& r : rows) {
    os << "  " << std::setw(4) << r.net_size << " | ";
    print_ratio(os, r.all_delay_ratio);
    os << "  ";
    print_ratio(os, r.all_cost_ratio);
    os << "  |  " << std::setw(5) << std::fixed << std::setprecision(0)
       << r.percent_winners << "  | ";
    print_ratio(os, r.winners_delay_ratio);
    os << "  ";
    print_ratio(os, r.winners_cost_ratio);
    os << "\n";
  }
  os.flush();
}

void print_csv(std::ostream& os, std::span<const AggregateRow> rows) {
  os << "net_size,trials,all_delay_ratio,all_cost_ratio,percent_winners,"
        "winners_delay_ratio,winners_cost_ratio,delay_stddev,cost_stddev,"
        "delay_ci95\n";
  for (const AggregateRow& r : rows) {
    os << r.net_size << ',' << r.trials << ',' << r.all_delay_ratio << ','
       << r.all_cost_ratio << ',' << r.percent_winners << ',';
    if (std::isnan(r.winners_delay_ratio)) {
      os << "NA,NA";
    } else {
      os << r.winners_delay_ratio << ',' << r.winners_cost_ratio;
    }
    os << ',' << r.all_delay_stddev << ',' << r.all_cost_stddev << ','
       << r.delay_ci95 << "\n";
  }
  os.flush();
}

}  // namespace ntr::expt
