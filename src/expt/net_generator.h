#pragma once

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "graph/net.h"
#include "spice/technology.h"

namespace ntr::expt {

/// Deterministic random-net source matching the paper's experimental
/// setup: pin locations drawn from a uniform distribution over a square
/// layout region (10 mm x 10 mm for the Table-1 technology). pins[0] --
/// the source -- is just the first random pin, as in the paper.
class NetGenerator {
 public:
  explicit NetGenerator(std::uint64_t seed,
                        double layout_side_um = spice::kTable1Technology.layout_side_um)
      : rng_(seed), side_um_(layout_side_um) {}

  /// A net with `pin_count` distinct pins (resampling collisions, which at
  /// continuous coordinates are measure-zero but guarded anyway).
  graph::Net random_net(std::size_t pin_count);

  /// `count` independent nets of the same size (the paper uses 50 per size).
  std::vector<graph::Net> random_nets(std::size_t count, std::size_t pin_count);

  /// A net with clustered pins: `cluster_count` uniformly placed cluster
  /// centers, pins normally scattered around a random center with the
  /// given standard deviation (clipped to the layout). Placed designs
  /// yield clustered -- not uniform -- pin distributions, so this probes
  /// how the paper's uniform-net results carry over to realistic
  /// placements (see bench/ablation_distribution).
  graph::Net random_clustered_net(std::size_t pin_count, std::size_t cluster_count,
                                  double spread_um);

 private:
  std::mt19937_64 rng_;
  double side_um_;
};

/// The net sizes reported in every table of the paper.
inline constexpr std::size_t kPaperNetSizes[] = {5, 10, 20, 30};

/// Number of trial nets per size in the paper's tables.
inline constexpr std::size_t kPaperTrialCount = 50;

}  // namespace ntr::expt
