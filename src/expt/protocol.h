#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "delay/evaluator.h"
#include "expt/comparison.h"
#include "expt/net_generator.h"
#include "graph/net.h"
#include "graph/routing_graph.h"

namespace ntr::expt {

/// The paper's experimental protocol, as a reusable library function:
/// for each net size, generate `trials` random nets from a size-salted
/// seed, route each with `baseline` and `candidate`, measure both with
/// `measure` (max source-sink delay), and aggregate the normalized
/// delay/cost ratios with the winners-only breakdown.
struct ProtocolConfig {
  std::vector<std::size_t> net_sizes{5, 10, 20, 30};
  std::size_t trials = kPaperTrialCount;
  std::uint64_t seed = 19940101;
};

using RoutingFn = std::function<graph::RoutingGraph(const graph::Net&)>;

std::vector<AggregateRow> run_protocol(const ProtocolConfig& config,
                                       const RoutingFn& baseline,
                                       const RoutingFn& candidate,
                                       const delay::DelayEvaluator& measure);

}  // namespace ntr::expt
