#include "expt/net_generator.h"

#include <algorithm>
#include <stdexcept>

#include "geom/point.h"

namespace ntr::expt {

graph::Net NetGenerator::random_net(std::size_t pin_count) {
  if (pin_count < 2)
    throw std::invalid_argument("random_net: need at least two pins");
  std::uniform_real_distribution<double> coord(0.0, side_um_);
  graph::Net net;
  net.pins.reserve(pin_count);
  while (net.pins.size() < pin_count) {
    const geom::Point p{coord(rng_), coord(rng_)};
    const bool duplicate =
        std::find(net.pins.begin(), net.pins.end(), p) != net.pins.end();
    if (!duplicate) net.pins.push_back(p);
  }
  return net;
}

graph::Net NetGenerator::random_clustered_net(std::size_t pin_count,
                                              std::size_t cluster_count,
                                              double spread_um) {
  if (pin_count < 2)
    throw std::invalid_argument("random_clustered_net: need at least two pins");
  if (cluster_count == 0)
    throw std::invalid_argument("random_clustered_net: need at least one cluster");
  if (spread_um <= 0.0)
    throw std::invalid_argument("random_clustered_net: spread must be positive");

  std::uniform_real_distribution<double> coord(0.0, side_um_);
  std::vector<geom::Point> centers;
  centers.reserve(cluster_count);
  for (std::size_t c = 0; c < cluster_count; ++c)
    centers.push_back({coord(rng_), coord(rng_)});

  std::uniform_int_distribution<std::size_t> pick(0, cluster_count - 1);
  std::normal_distribution<double> jitter(0.0, spread_um);
  const auto clip = [&](double v) { return std::min(std::max(v, 0.0), side_um_); };

  graph::Net net;
  net.pins.reserve(pin_count);
  while (net.pins.size() < pin_count) {
    const geom::Point& center = centers[pick(rng_)];
    const geom::Point p{clip(center.x + jitter(rng_)), clip(center.y + jitter(rng_))};
    const bool duplicate =
        std::find(net.pins.begin(), net.pins.end(), p) != net.pins.end();
    if (!duplicate) net.pins.push_back(p);
  }
  return net;
}

std::vector<graph::Net> NetGenerator::random_nets(std::size_t count,
                                                  std::size_t pin_count) {
  std::vector<graph::Net> nets;
  nets.reserve(count);
  for (std::size_t i = 0; i < count; ++i) nets.push_back(random_net(pin_count));
  return nets;
}

}  // namespace ntr::expt
