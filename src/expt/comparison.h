#pragma once

#include <cstddef>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace ntr::expt {

/// One net's outcome: a candidate routing measured against a baseline
/// routing (delays in seconds, costs in um of wire).
struct TrialRecord {
  double base_delay = 0.0;
  double base_cost = 0.0;
  double new_delay = 0.0;
  double new_cost = 0.0;

  [[nodiscard]] double delay_ratio() const { return new_delay / base_delay; }
  [[nodiscard]] double cost_ratio() const { return new_cost / base_cost; }
  /// "Winner": the method strictly improved on the baseline delay (the
  /// epsilon keeps solver noise from minting fake winners).
  [[nodiscard]] bool winner() const { return new_delay < base_delay * (1.0 - 1e-9); }
};

/// One row of a paper-style table: averages over all trials of one net
/// size, plus the winners-only breakdown ("All Cases" / "Percent Winners"
/// / "Winners Only" columns of Tables 2-7).
struct AggregateRow {
  std::size_t net_size = 0;
  std::size_t trials = 0;
  double all_delay_ratio = 0.0;
  double all_cost_ratio = 0.0;
  double percent_winners = 0.0;
  /// NaN when there are no winners (rendered "NA", as the paper prints).
  double winners_delay_ratio = 0.0;
  double winners_cost_ratio = 0.0;
  /// Sample standard deviations of the all-cases ratios, plus the 95%
  /// confidence half-width of the mean delay ratio (z-approximation,
  /// 1.96 * s / sqrt(n)) -- the error bars the paper's tables lack.
  double all_delay_stddev = 0.0;
  double all_cost_stddev = 0.0;
  double delay_ci95 = 0.0;
};

AggregateRow aggregate(std::size_t net_size, std::span<const TrialRecord> trials);

/// Renders rows in the layout of the paper's tables:
///
///   | net  | All Cases    | Percent | Winners Only |
///   | size | Delay  Cost  | Winners | Delay  Cost  |
void print_paper_table(std::ostream& os, const std::string& title,
                       std::span<const AggregateRow> rows);

/// Same data as comma-separated values (for plotting / EXPERIMENTS.md).
void print_csv(std::ostream& os, std::span<const AggregateRow> rows);

}  // namespace ntr::expt
