#include "expt/protocol.h"

#include "expt/net_generator.h"

namespace ntr::expt {

std::vector<AggregateRow> run_protocol(const ProtocolConfig& config,
                                       const RoutingFn& baseline,
                                       const RoutingFn& candidate,
                                       const delay::DelayEvaluator& measure) {
  std::vector<AggregateRow> rows;
  for (const std::size_t size : config.net_sizes) {
    // Per-size generator so adding/removing sizes never reshuffles the
    // instances of other sizes.
    NetGenerator generator(config.seed + size);
    std::vector<TrialRecord> records;
    records.reserve(config.trials);
    for (std::size_t t = 0; t < config.trials; ++t) {
      const graph::Net net = generator.random_net(size);
      const graph::RoutingGraph base = baseline(net);
      const graph::RoutingGraph cand = candidate(net);
      TrialRecord rec;
      rec.base_delay = measure.max_delay(base);
      rec.base_cost = base.total_wirelength();
      rec.new_delay = measure.max_delay(cand);
      rec.new_cost = cand.total_wirelength();
      records.push_back(rec);
    }
    rows.push_back(aggregate(size, records));
  }
  return rows;
}

}  // namespace ntr::expt
