#pragma once

#include <vector>

#include "graph/net.h"
#include "graph/routing_graph.h"
#include "grid/grid.h"
#include "grid/search.h"

namespace ntr::grid {

/// One net's maze routing: the grid cell of every pin plus the cell path
/// of each connection (one path per sink, attaching it to the
/// already-routed subtree -- sequential maze routing in the style of
/// Lee-router based global routers).
struct MazeNetRouting {
  std::vector<Cell> pin_cells;  ///< indexed like net.pins
  std::vector<CellPath> paths;  ///< k paths for k sinks, in routing order
};

/// Routes a net on the grid: snap pins to cells, then connect each sink
/// (nearest first) to the routed set with a Dijkstra wavefront under
/// `cost`. Throws std::invalid_argument when two pins snap to the same
/// cell (grid too coarse) or a pin lands on an obstacle, and
/// std::runtime_error when some pin is unreachable.
MazeNetRouting route_net(const Grid& grid, const graph::Net& net,
                         const StepCost& cost = pitch_cost);

/// Adds (delta=+1) or removes (delta=-1) this routing's wires from the
/// grid's boundary usage -- the bookkeeping behind congestion-aware
/// multi-net routing and rip-up-and-reroute.
void commit_usage(Grid& grid, const MazeNetRouting& routing, int delta);

/// True if any step of the routing crosses a boundary above capacity.
bool has_overflow(const Grid& grid, const MazeNetRouting& routing);

/// Total routed wirelength (sum of path lengths; shared cells between
/// paths of the same net are not double-counted).
double routed_wirelength(const Grid& grid, const MazeNetRouting& routing);

/// Converts the maze routing into an electrical RoutingGraph: one node
/// per used grid cell (pins keep their source/sink roles, bends and
/// junctions become Steiner nodes), then collinear degree-2 Steiner
/// chains are contracted away. The result plugs into every delay
/// evaluator and the LDRG family like any other routing.
graph::RoutingGraph to_routing_graph(const Grid& grid, const graph::Net& net,
                                     const MazeNetRouting& routing);

/// Contracts collinear degree-2 Steiner chains into single edges (lengths
/// preserved exactly) and drops the isolated Steiner nodes left behind.
/// Shared by the single-layer and layered grid-to-graph converters.
graph::RoutingGraph contract_collinear_steiner(const graph::RoutingGraph& g);

}  // namespace ntr::grid
