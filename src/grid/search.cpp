#include "grid/search.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace ntr::grid {

double pitch_cost(const Grid& grid, Cell /*from*/, Direction /*d*/) {
  return grid.pitch();
}

StepCost congestion_cost(double penalty) {
  return [penalty](const Grid& grid, Cell from, Direction d) {
    const unsigned usage_after = grid.usage(from, d) + 1;
    const double over =
        usage_after > grid.capacity()
            ? static_cast<double>(usage_after - grid.capacity())
            : 0.0;
    return grid.pitch() * (1.0 + penalty * over);
  };
}

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

void check_endpoints(const Grid& grid, std::span<const Cell> sources, Cell target) {
  if (sources.empty()) throw std::invalid_argument("route: no source cells");
  for (const Cell s : sources) {
    if (!grid.in_bounds(s)) throw std::out_of_range("route: source out of bounds");
    if (grid.blocked(s)) throw std::invalid_argument("route: source cell blocked");
  }
  if (!grid.in_bounds(target)) throw std::out_of_range("route: target out of bounds");
  if (grid.blocked(target)) throw std::invalid_argument("route: target cell blocked");
}

CellPath backtrack(const Grid& grid, const std::vector<std::size_t>& parent,
                   Cell target) {
  CellPath path;
  for (std::size_t at = grid.index(target); at != kNone; at = parent[at])
    path.push_back(grid.cell_at(at));
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

CellPath lee_route(const Grid& grid, std::span<const Cell> sources, Cell target) {
  check_endpoints(grid, sources, target);
  std::vector<std::size_t> parent(grid.cell_count(), kNone);
  std::vector<bool> seen(grid.cell_count(), false);
  std::queue<Cell> frontier;
  for (const Cell s : sources) {
    if (!seen[grid.index(s)]) {
      seen[grid.index(s)] = true;
      frontier.push(s);
    }
    if (s == target) return {target};
  }
  while (!frontier.empty()) {
    const Cell c = frontier.front();
    frontier.pop();
    for (const Direction d : kDirections) {
      Cell n;
      if (!grid.neighbor(c, d, n) || grid.blocked(n) || seen[grid.index(n)]) continue;
      seen[grid.index(n)] = true;
      parent[grid.index(n)] = grid.index(c);
      if (n == target) return backtrack(grid, parent, target);
      frontier.push(n);
    }
  }
  return {};  // unreachable
}

CellPath dijkstra_route(const Grid& grid, std::span<const Cell> sources, Cell target,
                        const StepCost& cost) {
  check_endpoints(grid, sources, target);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> dist(grid.cell_count(), kInf);
  std::vector<std::size_t> parent(grid.cell_count(), kNone);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const Cell s : sources) {
    dist[grid.index(s)] = 0.0;
    heap.emplace(0.0, grid.index(s));
  }
  while (!heap.empty()) {
    const auto [d_u, u] = heap.top();
    heap.pop();
    if (d_u > dist[u]) continue;
    const Cell c = grid.cell_at(u);
    if (c == target) return backtrack(grid, parent, target);
    for (const Direction d : kDirections) {
      Cell n;
      if (!grid.neighbor(c, d, n) || grid.blocked(n)) continue;
      const double nd = d_u + cost(grid, c, d);
      if (nd < dist[grid.index(n)]) {
        dist[grid.index(n)] = nd;
        parent[grid.index(n)] = u;
        heap.emplace(nd, grid.index(n));
      }
    }
  }
  return {};
}

CellPath astar_route(const Grid& grid, Cell source, Cell target) {
  const Cell sources[] = {source};
  check_endpoints(grid, sources, target);
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const auto heuristic = [&](Cell c) {
    const double dc = c.col > target.col ? c.col - target.col : target.col - c.col;
    const double dr = c.row > target.row ? c.row - target.row : target.row - c.row;
    return (dc + dr) * grid.pitch();
  };
  std::vector<double> dist(grid.cell_count(), kInf);
  std::vector<std::size_t> parent(grid.cell_count(), kNone);
  using Entry = std::pair<double, std::size_t>;  // (f = g + h, cell)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[grid.index(source)] = 0.0;
  heap.emplace(heuristic(source), grid.index(source));
  while (!heap.empty()) {
    const auto [f_u, u] = heap.top();
    heap.pop();
    const Cell c = grid.cell_at(u);
    if (f_u > dist[u] + heuristic(c)) continue;  // stale
    if (c == target) return backtrack(grid, parent, target);
    for (const Direction d : kDirections) {
      Cell n;
      if (!grid.neighbor(c, d, n) || grid.blocked(n)) continue;
      const double nd = dist[u] + grid.pitch();
      if (nd < dist[grid.index(n)]) {
        dist[grid.index(n)] = nd;
        parent[grid.index(n)] = u;
        heap.emplace(nd + heuristic(n), grid.index(n));
      }
    }
  }
  return {};
}

double path_length(const Grid& grid, const CellPath& path) {
  return path.empty() ? 0.0
                      : static_cast<double>(path.size() - 1) * grid.pitch();
}

}  // namespace ntr::grid
