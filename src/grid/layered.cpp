#include "grid/layered.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "geom/bbox.h"
#include "grid/net_router.h"

namespace ntr::grid {

LayeredGrid::LayeredGrid(std::size_t cols, std::size_t rows, double pitch_um,
                         unsigned capacity, double via_cost_um)
    : cols_(cols),
      rows_(rows),
      pitch_um_(pitch_um),
      capacity_(capacity),
      via_cost_um_(via_cost_um) {
  if (cols < 2 || rows < 2)
    throw std::invalid_argument("LayeredGrid: need at least a 2x2 grid");
  if (pitch_um <= 0.0)
    throw std::invalid_argument("LayeredGrid: pitch must be positive");
  if (via_cost_um < 0.0)
    throw std::invalid_argument("LayeredGrid: via cost must be non-negative");
  blocked_.assign(state_count(), false);
  usage_.assign((cols_ - 1) * rows_ + cols_ * (rows_ - 1), 0);
}

std::size_t LayeredGrid::boundary_id(LayeredCell a, LayeredCell b) const {
  if (a.layer != b.layer || a.layer > 1)
    throw std::invalid_argument("LayeredGrid::boundary_id: not same-layer neighbors");
  if (a.layer == 0) {
    if (a.cell.row != b.cell.row ||
        (a.cell.col != b.cell.col + 1 && b.cell.col != a.cell.col + 1))
      throw std::invalid_argument("LayeredGrid::boundary_id: not E/W neighbors");
    const std::size_t col = std::min(a.cell.col, b.cell.col);
    return a.cell.row * (cols_ - 1) + col;
  }
  if (a.cell.col != b.cell.col ||
      (a.cell.row != b.cell.row + 1 && b.cell.row != a.cell.row + 1))
    throw std::invalid_argument("LayeredGrid::boundary_id: not N/S neighbors");
  const std::size_t row = std::min(a.cell.row, b.cell.row);
  return (cols_ - 1) * rows_ + row * cols_ + a.cell.col;
}

void LayeredGrid::add_usage(LayeredCell a, LayeredCell b, int delta) {
  unsigned& u = usage_[boundary_id(a, b)];
  if (delta < 0 && u < static_cast<unsigned>(-delta))
    throw std::logic_error("LayeredGrid::add_usage: usage underflow");
  u = static_cast<unsigned>(static_cast<int>(u) + delta);
}

std::size_t LayeredGrid::total_overflow() const {
  std::size_t overflow = 0;
  for (const unsigned u : usage_)
    if (u > capacity_) overflow += u - capacity_;
  return overflow;
}

unsigned LayeredGrid::max_usage() const {
  unsigned m = 0;
  for (const unsigned u : usage_) m = std::max(m, u);
  return m;
}

void LayeredGrid::block(Cell c, unsigned layer) {
  if (!in_bounds(c) || layer > 1)
    throw std::out_of_range("LayeredGrid::block: bad cell/layer");
  blocked_[layer * cols_ * rows_ + cell_index(c)] = true;
}

Cell LayeredGrid::snap(const geom::Point& p) const {
  const auto clamp_idx = [](double v, std::size_t limit) {
    if (v < 0.0) return std::size_t{0};
    const auto idx = static_cast<std::size_t>(v);
    return std::min(idx, limit - 1);
  };
  return Cell{clamp_idx(p.x / pitch_um_, cols_), clamp_idx(p.y / pitch_um_, rows_)};
}

LayeredPath layered_route(const LayeredGrid& grid,
                          std::span<const LayeredCell> sources, Cell target,
                          double congestion_penalty) {
  if (sources.empty()) throw std::invalid_argument("layered_route: no sources");
  if (!grid.in_bounds(target))
    throw std::out_of_range("layered_route: target out of bounds");
  const LayeredCell goal{target, 0};  // pins live on layer 0
  if (grid.blocked(goal.cell, goal.layer))
    throw std::invalid_argument("layered_route: target blocked");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  constexpr std::size_t kNone = static_cast<std::size_t>(-1);
  std::vector<double> dist(grid.state_count(), kInf);
  std::vector<std::size_t> parent(grid.state_count(), kNone);

  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const LayeredCell s : sources) {
    if (!grid.in_bounds(s.cell) || s.layer > 1)
      throw std::out_of_range("layered_route: source out of bounds");
    if (grid.blocked(s.cell, s.layer))
      throw std::invalid_argument("layered_route: source blocked");
    dist[grid.state_index(s)] = 0.0;
    heap.emplace(0.0, grid.state_index(s));
  }

  const auto decode = [&](std::size_t idx) {
    const std::size_t per_layer = grid.cols() * grid.rows();
    const unsigned layer = static_cast<unsigned>(idx / per_layer);
    const std::size_t cell = idx % per_layer;
    return LayeredCell{Cell{cell % grid.cols(), cell / grid.cols()}, layer};
  };

  const std::size_t goal_idx = grid.state_index(goal);
  while (!heap.empty()) {
    const auto [d, idx] = heap.top();
    heap.pop();
    if (d > dist[idx]) continue;
    if (idx == goal_idx) break;
    const LayeredCell s = decode(idx);

    const auto relax = [&](LayeredCell to, double cost) {
      if (grid.blocked(to.cell, to.layer)) return;
      if (congestion_penalty > 0.0 && to.cell != s.cell) {
        const unsigned after = grid.usage(s, to) + 1;
        if (after > grid.capacity())
          cost *= 1.0 + congestion_penalty *
                            static_cast<double>(after - grid.capacity());
      }
      const std::size_t to_idx = grid.state_index(to);
      if (d + cost < dist[to_idx]) {
        dist[to_idx] = d + cost;
        parent[to_idx] = idx;
        heap.emplace(dist[to_idx], to_idx);
      }
    };

    if (s.layer == 0) {  // horizontal moves
      if (s.cell.col + 1 < grid.cols())
        relax({{s.cell.col + 1, s.cell.row}, 0}, grid.pitch());
      if (s.cell.col > 0) relax({{s.cell.col - 1, s.cell.row}, 0}, grid.pitch());
      relax({s.cell, 1}, grid.via_cost());
    } else {  // vertical moves
      if (s.cell.row + 1 < grid.rows())
        relax({{s.cell.col, s.cell.row + 1}, 1}, grid.pitch());
      if (s.cell.row > 0) relax({{s.cell.col, s.cell.row - 1}, 1}, grid.pitch());
      relax({s.cell, 0}, grid.via_cost());
    }
  }

  if (dist[goal_idx] == kInf) return {};
  LayeredPath path;
  for (std::size_t at = goal_idx; at != kNone; at = parent[at])
    path.push_back(decode(at));
  std::reverse(path.begin(), path.end());
  return path;
}

LayeredNetRouting route_net_layered(const LayeredGrid& grid, const graph::Net& net,
                                    double congestion_penalty) {
  net.validate();
  LayeredNetRouting routing;
  std::unordered_set<std::size_t> pin_cells;
  for (const geom::Point& p : net.pins) {
    const Cell c = grid.snap(p);
    if (grid.blocked(c, 0))
      throw std::invalid_argument("route_net_layered: pin cell blocked on layer 0");
    if (!pin_cells.insert(grid.cell_index(c)).second)
      throw std::invalid_argument("route_net_layered: pins collide on a cell");
    routing.pin_cells.push_back(c);
  }

  std::vector<std::size_t> order;
  for (std::size_t i = 1; i < net.size(); ++i) order.push_back(i);
  const Cell src = routing.pin_cells[0];
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto d = [&](std::size_t pin) {
      const Cell c = routing.pin_cells[pin];
      return (c.col > src.col ? c.col - src.col : src.col - c.col) +
             (c.row > src.row ? c.row - src.row : src.row - c.row);
    };
    return d(a) < d(b);
  });

  std::vector<LayeredCell> routed{{src, 0}};
  std::unordered_set<std::size_t> routed_ids{grid.state_index({src, 0})};
  // Per-net unique move bookkeeping (wire + vias).
  std::set<std::pair<std::size_t, std::size_t>> moves;
  for (const std::size_t pin : order) {
    const LayeredPath path =
        layered_route(grid, routed, routing.pin_cells[pin], congestion_penalty);
    if (path.empty())
      throw std::runtime_error("route_net_layered: pin unreachable");
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const std::size_t a = grid.state_index(path[i]);
      const std::size_t b = grid.state_index(path[i + 1]);
      moves.insert({std::min(a, b), std::max(a, b)});
    }
    for (const LayeredCell s : path) {
      if (routed_ids.insert(grid.state_index(s)).second) routed.push_back(s);
    }
    routing.paths.push_back(path);
  }

  const std::size_t per_layer = grid.cols() * grid.rows();
  for (const auto& [a, b] : moves) {
    const bool via = (a % per_layer) == (b % per_layer);
    if (via) {
      ++routing.via_count;
    } else {
      routing.wirelength_um += grid.pitch();
    }
  }
  return routing;
}

void commit_usage(LayeredGrid& grid, const LayeredNetRouting& routing, int delta) {
  std::set<std::size_t> seen;
  for (const LayeredPath& path : routing.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i].cell == path[i + 1].cell) continue;  // via
      if (seen.insert(grid.boundary_id(path[i], path[i + 1])).second)
        grid.add_usage(path[i], path[i + 1], delta);
    }
  }
}

bool has_overflow(const LayeredGrid& grid, const LayeredNetRouting& routing) {
  for (const LayeredPath& path : routing.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i].cell == path[i + 1].cell) continue;
      if (grid.usage(path[i], path[i + 1]) > grid.capacity()) return true;
    }
  }
  return false;
}

LayeredGlobalResult route_nets_layered(LayeredGrid& grid,
                                       std::span<const graph::Net> nets,
                                       double congestion_penalty,
                                       unsigned max_ripup_passes,
                                       double penalty_growth) {
  LayeredGlobalResult result;
  result.nets.resize(nets.size());

  std::vector<std::size_t> order(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return geom::BBox(nets[a].pins).half_perimeter() <
           geom::BBox(nets[b].pins).half_perimeter();
  });

  double penalty = congestion_penalty;
  for (const std::size_t i : order) {
    result.nets[i] = route_net_layered(grid, nets[i], penalty);
    commit_usage(grid, result.nets[i], +1);
  }
  for (unsigned pass = 0; pass < max_ripup_passes; ++pass) {
    if (grid.total_overflow() == 0) break;
    result.passes = pass + 1;
    penalty *= penalty_growth;
    bool rerouted = false;
    for (const std::size_t i : order) {
      if (!has_overflow(grid, result.nets[i])) continue;
      commit_usage(grid, result.nets[i], -1);
      result.nets[i] = route_net_layered(grid, nets[i], penalty);
      commit_usage(grid, result.nets[i], +1);
      rerouted = true;
    }
    if (!rerouted) break;
  }

  result.overflow = grid.total_overflow();
  result.max_usage = grid.max_usage();
  for (const LayeredNetRouting& r : result.nets) {
    result.total_wirelength_um += r.wirelength_um;
    result.total_vias += r.via_count;
  }
  return result;
}

graph::RoutingGraph to_routing_graph(const LayeredGrid& grid, const graph::Net& net,
                                     const LayeredNetRouting& routing) {
  graph::RoutingGraph g;
  std::unordered_map<std::size_t, graph::NodeId> node_of;  // by planar cell
  for (std::size_t pin = 0; pin < routing.pin_cells.size(); ++pin) {
    const Cell c = routing.pin_cells[pin];
    node_of[grid.cell_index(c)] = g.add_node(
        grid.center(c), pin == 0 ? graph::NodeKind::kSource : graph::NodeKind::kSink);
  }
  (void)net;
  const auto node_for = [&](Cell c) {
    auto [it, inserted] = node_of.try_emplace(grid.cell_index(c), 0);
    if (inserted) it->second = g.add_node(grid.center(c), graph::NodeKind::kSteiner);
    return it->second;
  };
  for (const LayeredPath& path : routing.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      if (path[i].cell == path[i + 1].cell) continue;  // via: same planar node
      const graph::NodeId a = node_for(path[i].cell);
      const graph::NodeId b = node_for(path[i + 1].cell);
      if (a != b) g.add_edge(a, b);
    }
  }
  return contract_collinear_steiner(g);
}

}  // namespace ntr::grid
