#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "geom/point.h"

namespace ntr::grid {

/// A cell of the routing grid, addressed by column and row.
struct Cell {
  std::size_t col = 0;
  std::size_t row = 0;
  friend bool operator==(const Cell&, const Cell&) = default;
};

/// The four rectilinear directions.
enum class Direction { kEast, kWest, kNorth, kSouth };
inline constexpr Direction kDirections[] = {Direction::kEast, Direction::kWest,
                                            Direction::kNorth, Direction::kSouth};

/// A uniform routing grid over the layout region: cells at pitch
/// `pitch_um`, optional blocked cells (macros/obstacles), and capacitated
/// boundaries between adjacent cells (the classical global-routing GCell
/// model -- each boundary carries at most `capacity` wires).
class Grid {
 public:
  Grid(std::size_t cols, std::size_t rows, double pitch_um, unsigned capacity = 1);

  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] double pitch() const { return pitch_um_; }
  [[nodiscard]] unsigned capacity() const { return capacity_; }
  [[nodiscard]] std::size_t cell_count() const { return cols_ * rows_; }

  [[nodiscard]] std::size_t index(Cell c) const { return c.row * cols_ + c.col; }
  [[nodiscard]] Cell cell_at(std::size_t index) const {
    return Cell{index % cols_, index / cols_};
  }

  [[nodiscard]] bool in_bounds(Cell c) const { return c.col < cols_ && c.row < rows_; }

  /// Neighbor in the given direction, if any (grid border otherwise).
  [[nodiscard]] bool neighbor(Cell c, Direction d, Cell& out) const;

  // ---- obstacles ----
  void block(Cell c);
  void block_rect(Cell lo, Cell hi);  ///< inclusive rectangle
  [[nodiscard]] bool blocked(Cell c) const { return blocked_[index(c)]; }

  // ---- geometry mapping ----
  [[nodiscard]] geom::Point center(Cell c) const {
    return geom::Point{(static_cast<double>(c.col) + 0.5) * pitch_um_,
                       (static_cast<double>(c.row) + 0.5) * pitch_um_};
  }
  /// Nearest cell to a plane point (clamped to the grid).
  [[nodiscard]] Cell snap(const geom::Point& p) const;

  // ---- boundary usage (congestion) ----
  /// Identifier of the boundary between c and its d-neighbor. Both sides
  /// map to the same id. Precondition: the neighbor exists.
  [[nodiscard]] std::size_t boundary_id(Cell c, Direction d) const;
  [[nodiscard]] unsigned usage(Cell c, Direction d) const {
    return usage_[boundary_id(c, d)];
  }
  void add_usage(Cell c, Direction d, int delta);
  [[nodiscard]] bool congested(Cell c, Direction d) const {
    return usage(c, d) >= capacity_;
  }

  /// Total overflow: sum over boundaries of max(0, usage - capacity).
  [[nodiscard]] std::size_t total_overflow() const;
  [[nodiscard]] unsigned max_usage() const;

 private:
  std::size_t cols_, rows_;
  double pitch_um_;
  unsigned capacity_;
  std::vector<bool> blocked_;
  /// Horizontal boundaries (east-west, (cols-1)*rows of them) followed by
  /// vertical boundaries (north-south, cols*(rows-1)).
  std::vector<unsigned> usage_;

  [[nodiscard]] std::size_t horizontal_boundary_count() const {
    return (cols_ - 1) * rows_;
  }
};

}  // namespace ntr::grid
