#include "grid/grid.h"

#include <algorithm>
#include <cmath>

namespace ntr::grid {

Grid::Grid(std::size_t cols, std::size_t rows, double pitch_um, unsigned capacity)
    : cols_(cols), rows_(rows), pitch_um_(pitch_um), capacity_(capacity) {
  if (cols < 2 || rows < 2)
    throw std::invalid_argument("Grid: need at least a 2x2 grid");
  if (pitch_um <= 0.0) throw std::invalid_argument("Grid: pitch must be positive");
  if (capacity == 0) throw std::invalid_argument("Grid: capacity must be positive");
  blocked_.assign(cell_count(), false);
  usage_.assign(horizontal_boundary_count() + cols_ * (rows_ - 1), 0);
}

bool Grid::neighbor(Cell c, Direction d, Cell& out) const {
  switch (d) {
    case Direction::kEast:
      if (c.col + 1 >= cols_) return false;
      out = Cell{c.col + 1, c.row};
      return true;
    case Direction::kWest:
      if (c.col == 0) return false;
      out = Cell{c.col - 1, c.row};
      return true;
    case Direction::kNorth:
      if (c.row + 1 >= rows_) return false;
      out = Cell{c.col, c.row + 1};
      return true;
    case Direction::kSouth:
      if (c.row == 0) return false;
      out = Cell{c.col, c.row - 1};
      return true;
  }
  return false;
}

void Grid::block(Cell c) {
  if (!in_bounds(c)) throw std::out_of_range("Grid::block: cell out of bounds");
  blocked_[index(c)] = true;
}

void Grid::block_rect(Cell lo, Cell hi) {
  if (!in_bounds(lo) || !in_bounds(hi) || lo.col > hi.col || lo.row > hi.row)
    throw std::invalid_argument("Grid::block_rect: bad rectangle");
  for (std::size_t r = lo.row; r <= hi.row; ++r)
    for (std::size_t c = lo.col; c <= hi.col; ++c) blocked_[index(Cell{c, r})] = true;
}

Cell Grid::snap(const geom::Point& p) const {
  const auto clamp_idx = [](double v, std::size_t limit) {
    if (v < 0.0) return std::size_t{0};
    const auto idx = static_cast<std::size_t>(v);
    return std::min(idx, limit - 1);
  };
  return Cell{clamp_idx(p.x / pitch_um_, cols_), clamp_idx(p.y / pitch_um_, rows_)};
}

std::size_t Grid::boundary_id(Cell c, Direction d) const {
  Cell n;
  if (!neighbor(c, d, n))
    throw std::out_of_range("Grid::boundary_id: no neighbor in that direction");
  // Normalize to the lower-left cell of the boundary.
  switch (d) {
    case Direction::kEast:
      return c.row * (cols_ - 1) + c.col;
    case Direction::kWest:
      return c.row * (cols_ - 1) + n.col;
    case Direction::kNorth:
      return horizontal_boundary_count() + c.row * cols_ + c.col;
    case Direction::kSouth:
      return horizontal_boundary_count() + n.row * cols_ + c.col;
  }
  throw std::logic_error("Grid::boundary_id: bad direction");
}

void Grid::add_usage(Cell c, Direction d, int delta) {
  unsigned& u = usage_[boundary_id(c, d)];
  if (delta < 0 && u < static_cast<unsigned>(-delta))
    throw std::logic_error("Grid::add_usage: usage underflow");
  u = static_cast<unsigned>(static_cast<int>(u) + delta);
}

std::size_t Grid::total_overflow() const {
  std::size_t overflow = 0;
  for (const unsigned u : usage_)
    if (u > capacity_) overflow += u - capacity_;
  return overflow;
}

unsigned Grid::max_usage() const {
  unsigned m = 0;
  for (const unsigned u : usage_) m = std::max(m, u);
  return m;
}

}  // namespace ntr::grid
