#include "grid/global_router.h"

#include <algorithm>
#include <numeric>

#include "geom/bbox.h"

namespace ntr::grid {

GlobalRouteResult route_nets(Grid& grid, std::span<const graph::Net> nets,
                             const GlobalRouteOptions& options) {
  GlobalRouteResult result;
  result.nets.resize(nets.size());

  // Short nets first: they have the least routing freedom per unit length
  // and leave the big nets to detour around the congestion they create.
  std::vector<std::size_t> order(nets.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return geom::BBox(nets[a].pins).half_perimeter() <
           geom::BBox(nets[b].pins).half_perimeter();
  });

  double penalty = options.congestion_penalty;
  for (const std::size_t i : order) {
    result.nets[i] = route_net(grid, nets[i], congestion_cost(penalty));
    commit_usage(grid, result.nets[i], +1);
  }

  // Rip-up and reroute: nets crossing over-capacity boundaries get a
  // second chance under a stiffer penalty.
  for (unsigned pass = 0; pass < options.max_ripup_passes; ++pass) {
    if (grid.total_overflow() == 0) break;
    result.passes = pass + 1;
    penalty *= options.penalty_growth;
    bool rerouted_any = false;
    for (const std::size_t i : order) {
      if (!has_overflow(grid, result.nets[i])) continue;
      commit_usage(grid, result.nets[i], -1);
      result.nets[i] = route_net(grid, nets[i], congestion_cost(penalty));
      commit_usage(grid, result.nets[i], +1);
      rerouted_any = true;
    }
    if (!rerouted_any) break;
  }

  result.overflow = grid.total_overflow();
  result.max_usage = grid.max_usage();
  for (const MazeNetRouting& r : result.nets)
    result.total_wirelength_um += routed_wirelength(grid, r);
  return result;
}

}  // namespace ntr::grid
