#pragma once

#include <functional>
#include <span>
#include <vector>

#include "grid/grid.h"

namespace ntr::grid {

/// Cost of stepping across one cell boundary. The default charges the
/// pitch (pure shortest path); congestion-aware routing adds a penalty on
/// boundaries at or over capacity.
using StepCost = std::function<double(const Grid&, Cell from, Direction d)>;

/// Unit-distance step cost (the grid pitch).
double pitch_cost(const Grid& grid, Cell from, Direction d);

/// Congestion-aware step cost: pitch * (1 + penalty * max(0, usage+1 -
/// capacity)) -- taking a boundary beyond its capacity gets linearly more
/// expensive, which is what lets rip-up-and-reroute converge.
StepCost congestion_cost(double penalty);

/// A path as a cell sequence (front = start, back = goal); empty when the
/// goal is unreachable.
using CellPath = std::vector<Cell>;

/// Lee-style wavefront expansion (uniform BFS) from `sources` to `target`.
/// With several sources the path starts at whichever source is nearest --
/// the multi-source form used to attach a pin to an already-routed
/// subtree. Blocked cells are never entered (but a blocked source/target
/// is an error).
CellPath lee_route(const Grid& grid, std::span<const Cell> sources, Cell target);

/// Dijkstra under an arbitrary step cost (reduces to Lee for pitch_cost).
CellPath dijkstra_route(const Grid& grid, std::span<const Cell> sources, Cell target,
                        const StepCost& cost);

/// A* with the Manhattan-distance heuristic (admissible for pitch cost,
/// hence returns a shortest path while expanding fewer cells than Lee).
CellPath astar_route(const Grid& grid, Cell source, Cell target);

/// Wire length of a cell path in micrometers: (cells - 1) * pitch.
double path_length(const Grid& grid, const CellPath& path);

}  // namespace ntr::grid
