#pragma once

#include <span>
#include <vector>

#include "graph/net.h"
#include "grid/grid.h"
#include "grid/net_router.h"

namespace ntr::grid {

struct GlobalRouteOptions {
  /// Linear over-capacity penalty of the congestion-aware step cost.
  double congestion_penalty = 4.0;
  /// Rip-up-and-reroute passes after the initial routing.
  unsigned max_ripup_passes = 4;
  /// Penalty growth per pass (history-style pressure).
  double penalty_growth = 2.0;
};

struct GlobalRouteResult {
  std::vector<MazeNetRouting> nets;  ///< indexed like the input nets
  std::size_t overflow = 0;          ///< remaining boundary overflow
  unsigned max_usage = 0;
  double total_wirelength_um = 0.0;
  unsigned passes = 0;  ///< rip-up passes actually run
};

/// Congestion-aware sequential global router over the GCell grid:
/// (1) route nets shortest-first under the congestion cost, committing
/// boundary usage; (2) while overflow remains, rip up every net that
/// crosses an over-capacity boundary and reroute it under a stiffer
/// penalty. This is the multi-net substrate in which single-net
/// constructions (MST/ERT/LDRG-augmented) live in a real flow -- the
/// "global routing" context of the paper's references [8][10][17].
///
/// Usage state is committed into `grid`; callers can inspect it after the
/// call (and must pass a fresh grid for a fresh run).
GlobalRouteResult route_nets(Grid& grid, std::span<const graph::Net> nets,
                             const GlobalRouteOptions& options = {});

}  // namespace ntr::grid
