#include "grid/net_router.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "geom/point.h"

namespace ntr::grid {

namespace {

Direction step_direction(Cell a, Cell b) {
  if (b.col == a.col + 1 && b.row == a.row) return Direction::kEast;
  if (a.col == b.col + 1 && b.row == a.row) return Direction::kWest;
  if (b.row == a.row + 1 && b.col == a.col) return Direction::kNorth;
  if (a.row == b.row + 1 && b.col == a.col) return Direction::kSouth;
  throw std::logic_error("step_direction: cells are not adjacent");
}

/// Unique boundary ids crossed by a routing (per net, so shared segments
/// between a net's own paths count once).
std::unordered_set<std::size_t> crossed_boundaries(const Grid& grid,
                                                   const MazeNetRouting& routing) {
  std::unordered_set<std::size_t> ids;
  for (const CellPath& path : routing.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      ids.insert(grid.boundary_id(path[i], step_direction(path[i], path[i + 1])));
    }
  }
  return ids;
}

}  // namespace

MazeNetRouting route_net(const Grid& grid, const graph::Net& net,
                         const StepCost& cost) {
  net.validate();
  MazeNetRouting routing;
  routing.pin_cells.reserve(net.size());
  std::unordered_set<std::size_t> pin_cell_ids;
  for (const geom::Point& p : net.pins) {
    const Cell c = grid.snap(p);
    if (grid.blocked(c))
      throw std::invalid_argument("route_net: pin lands on a blocked cell");
    if (!pin_cell_ids.insert(grid.index(c)).second)
      throw std::invalid_argument(
          "route_net: two pins snap to the same grid cell (grid too coarse)");
    routing.pin_cells.push_back(c);
  }

  // Attach sinks nearest-first (cheap pins extend the subtree for the
  // farther ones, like the sequential Lee routers the paper's intro cites).
  std::vector<std::size_t> order;
  for (std::size_t i = 1; i < net.size(); ++i) order.push_back(i);
  const Cell source = routing.pin_cells[0];
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto dist = [&](std::size_t pin) {
      const Cell c = routing.pin_cells[pin];
      const auto dc = c.col > source.col ? c.col - source.col : source.col - c.col;
      const auto dr = c.row > source.row ? c.row - source.row : source.row - c.row;
      return dc + dr;
    };
    return dist(a) < dist(b);
  });

  std::vector<Cell> routed{source};
  std::unordered_set<std::size_t> routed_ids{grid.index(source)};
  for (const std::size_t pin : order) {
    CellPath path = dijkstra_route(grid, routed, routing.pin_cells[pin], cost);
    if (path.empty())
      throw std::runtime_error("route_net: pin unreachable (blocked off)");
    for (const Cell c : path) {
      if (routed_ids.insert(grid.index(c)).second) routed.push_back(c);
    }
    routing.paths.push_back(std::move(path));
  }
  return routing;
}

void commit_usage(Grid& grid, const MazeNetRouting& routing, int delta) {
  // Walk the paths, applying each boundary once per net (a net's own
  // paths may retrace shared trunk segments).
  std::unordered_set<std::size_t> seen;
  for (const CellPath& path : routing.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Direction d = step_direction(path[i], path[i + 1]);
      if (seen.insert(grid.boundary_id(path[i], d)).second)
        grid.add_usage(path[i], d, delta);
    }
  }
}

bool has_overflow(const Grid& grid, const MazeNetRouting& routing) {
  for (const CellPath& path : routing.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const Direction d = step_direction(path[i], path[i + 1]);
      if (grid.usage(path[i], d) > grid.capacity()) return true;
    }
  }
  return false;
}

double routed_wirelength(const Grid& grid, const MazeNetRouting& routing) {
  return static_cast<double>(crossed_boundaries(grid, routing).size()) * grid.pitch();
}

graph::RoutingGraph to_routing_graph(const Grid& grid, const graph::Net& net,
                                     const MazeNetRouting& routing) {
  graph::RoutingGraph g;
  std::unordered_map<std::size_t, graph::NodeId> node_of;

  // Pins first, in net order, so node 0 is the source.
  for (std::size_t pin = 0; pin < routing.pin_cells.size(); ++pin) {
    const Cell c = routing.pin_cells[pin];
    node_of[grid.index(c)] = g.add_node(
        grid.center(c),
        pin == 0 ? graph::NodeKind::kSource : graph::NodeKind::kSink);
  }
  (void)net;

  const auto node_for = [&](Cell c) {
    auto [it, inserted] = node_of.try_emplace(grid.index(c), 0);
    if (inserted)
      it->second = g.add_node(grid.center(c), graph::NodeKind::kSteiner);
    return it->second;
  };
  for (const CellPath& path : routing.paths) {
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      g.add_edge(node_for(path[i]), node_for(path[i + 1]));
    }
  }

  return contract_collinear_steiner(g);
}

graph::RoutingGraph contract_collinear_steiner(const graph::RoutingGraph& input) {
  graph::RoutingGraph g = input;
  // Contract collinear degree-2 Steiner chains: straight runs of grid
  // cells become single edges (lengths are preserved exactly).
  bool contracted = true;
  while (contracted) {
    contracted = false;
    for (graph::NodeId n = 0; n < g.node_count() && !contracted; ++n) {
      if (g.node(n).kind != graph::NodeKind::kSteiner || g.degree(n) != 2) continue;
      const auto incident = g.incident_edges(n);
      const graph::NodeId a = g.other_endpoint(incident[0], n);
      const graph::NodeId b = g.other_endpoint(incident[1], n);
      const geom::Point pa = g.node(a).pos, pn = g.node(n).pos, pb = g.node(b).pos;
      const bool collinear =
          (pa.x == pn.x && pn.x == pb.x) || (pa.y == pn.y && pn.y == pb.y);
      if (!collinear || a == b) continue;
      // Remove the higher edge id first so the lower one stays valid.
      const graph::EdgeId hi = std::max(incident[0], incident[1]);
      const graph::EdgeId lo = std::min(incident[0], incident[1]);
      g.remove_edge(hi);
      g.remove_edge(lo);
      g.add_edge(a, b);
      contracted = true;
    }
  }

  // Contraction leaves isolated Steiner nodes behind; rebuild compactly.
  graph::RoutingGraph compact;
  std::unordered_map<graph::NodeId, graph::NodeId> remap;
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    const graph::GraphNode& node = g.node(n);
    if (node.kind == graph::NodeKind::kSteiner && g.degree(n) == 0) continue;
    remap[n] = compact.add_node(node.pos, node.kind);
  }
  for (const graph::GraphEdge& e : g.edges())
    compact.add_edge(remap.at(e.u), remap.at(e.v));
  return compact;
}

}  // namespace ntr::grid
