#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "geom/point.h"
#include "graph/net.h"
#include "graph/routing_graph.h"
#include "grid/grid.h"

namespace ntr::grid {

/// Position in a two-layer preferred-direction routing stack:
/// layer 0 (e.g. M1) carries horizontal wires, layer 1 (M2) vertical
/// wires, and vias connect the layers within a cell -- the standard HV
/// discipline of gridded routers.
struct LayeredCell {
  Cell cell;
  unsigned layer = 0;  ///< 0 = horizontal layer, 1 = vertical layer
  friend bool operator==(const LayeredCell&, const LayeredCell&) = default;
};

/// A uniform two-layer routing grid with per-layer obstacles, per-boundary
/// capacities (horizontal boundaries live on layer 0, vertical on layer 1)
/// and a via cost expressed in equivalent micrometers of wire.
class LayeredGrid {
 public:
  LayeredGrid(std::size_t cols, std::size_t rows, double pitch_um,
              unsigned capacity = 1, double via_cost_um = 50.0);

  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] double pitch() const { return pitch_um_; }
  [[nodiscard]] unsigned capacity() const { return capacity_; }
  [[nodiscard]] double via_cost() const { return via_cost_um_; }

  [[nodiscard]] bool in_bounds(Cell c) const { return c.col < cols_ && c.row < rows_; }
  [[nodiscard]] std::size_t cell_index(Cell c) const { return c.row * cols_ + c.col; }
  [[nodiscard]] std::size_t state_index(LayeredCell s) const {
    return s.layer * cols_ * rows_ + cell_index(s.cell);
  }
  [[nodiscard]] std::size_t state_count() const { return 2 * cols_ * rows_; }

  void block(Cell c, unsigned layer);
  [[nodiscard]] bool blocked(Cell c, unsigned layer) const {
    return blocked_[layer * cols_ * rows_ + cell_index(c)];
  }

  [[nodiscard]] geom::Point center(Cell c) const {
    return geom::Point{(static_cast<double>(c.col) + 0.5) * pitch_um_,
                       (static_cast<double>(c.row) + 0.5) * pitch_um_};
  }
  [[nodiscard]] Cell snap(const geom::Point& p) const;

  // ---- boundary usage (congestion), per preferred-direction layer ----
  /// Boundary between two laterally adjacent states on the same layer:
  /// horizontal boundaries exist on layer 0, vertical on layer 1.
  /// Precondition: a and b are same-layer neighbors.
  [[nodiscard]] std::size_t boundary_id(LayeredCell a, LayeredCell b) const;
  [[nodiscard]] unsigned usage(LayeredCell a, LayeredCell b) const {
    return usage_[boundary_id(a, b)];
  }
  void add_usage(LayeredCell a, LayeredCell b, int delta);
  [[nodiscard]] std::size_t total_overflow() const;
  [[nodiscard]] unsigned max_usage() const;

 private:
  std::size_t cols_, rows_;
  double pitch_um_;
  unsigned capacity_;
  double via_cost_um_;
  std::vector<bool> blocked_;  ///< [layer][cell]
  std::vector<unsigned> usage_;  ///< horizontal then vertical boundaries
};

/// One routed connection: a sequence of layered states where consecutive
/// states differ either by one cell in the layer's preferred direction or
/// by a via (same cell, other layer).
using LayeredPath = std::vector<LayeredCell>;

/// Dijkstra over (cell, layer) states honoring the HV discipline: E/W
/// moves only on layer 0, N/S only on layer 1, vias at via_cost. Multi-
/// source (attach to a routed subtree); empty result = unreachable.
/// `congestion_penalty` > 0 makes over-capacity boundaries linearly more
/// expensive (same rule as the single-layer congestion_cost).
LayeredPath layered_route(const LayeredGrid& grid,
                          std::span<const LayeredCell> sources, Cell target,
                          double congestion_penalty = 0.0);

/// A net routed on the layered grid (pins enter on layer 0).
struct LayeredNetRouting {
  std::vector<Cell> pin_cells;
  std::vector<LayeredPath> paths;
  std::size_t via_count = 0;
  double wirelength_um = 0.0;  ///< wire only, vias excluded
};

LayeredNetRouting route_net_layered(const LayeredGrid& grid, const graph::Net& net,
                                    double congestion_penalty = 0.0);

/// Adds/removes a layered routing's wires from the boundary usage
/// (vias consume no boundary capacity).
void commit_usage(LayeredGrid& grid, const LayeredNetRouting& routing, int delta);

/// True if any wire move of the routing crosses an over-capacity boundary.
bool has_overflow(const LayeredGrid& grid, const LayeredNetRouting& routing);

struct LayeredGlobalResult {
  std::vector<LayeredNetRouting> nets;
  std::size_t overflow = 0;
  unsigned max_usage = 0;
  double total_wirelength_um = 0.0;
  std::size_t total_vias = 0;
  unsigned passes = 0;
};

/// Congestion-aware sequential routing + rip-up-and-reroute over the
/// two-layer grid: the layered counterpart of route_nets().
LayeredGlobalResult route_nets_layered(LayeredGrid& grid,
                                       std::span<const graph::Net> nets,
                                       double congestion_penalty = 4.0,
                                       unsigned max_ripup_passes = 4,
                                       double penalty_growth = 2.0);

/// Projects the layered routing onto the plane as an electrical
/// RoutingGraph (vias become coincident -- zero-length -- links handled
/// by the netlist builder as shorts; collinear runs are contracted).
graph::RoutingGraph to_routing_graph(const LayeredGrid& grid, const graph::Net& net,
                                     const LayeredNetRouting& routing);

}  // namespace ntr::grid
