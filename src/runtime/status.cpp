#include "runtime/status.h"

#include <new>

namespace ntr::runtime {

const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBadInput: return "bad-input";
    case StatusCode::kIoError: return "io-error";
    case StatusCode::kSingular: return "singular";
    case StatusCode::kNonFinite: return "non-finite";
    case StatusCode::kTimeout: return "timeout";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kResourceExhausted: return "resource-exhausted";
    case StatusCode::kUnavailable: return "unavailable";
    case StatusCode::kConnectionReset: return "connection-reset";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::to_string() const {
  if (ok()) return "ok";
  std::string out = status_code_name(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status exception_to_status(const std::exception& e) {
  if (const auto* typed = dynamic_cast<const NtrError*>(&e))
    return typed->to_status();
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr ||
      dynamic_cast<const std::length_error*>(&e) != nullptr)
    return Status{StatusCode::kResourceExhausted, e.what()};
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr ||
      dynamic_cast<const std::out_of_range*>(&e) != nullptr ||
      dynamic_cast<const std::domain_error*>(&e) != nullptr)
    return Status{StatusCode::kBadInput, e.what()};
  if (dynamic_cast<const std::logic_error*>(&e) != nullptr)
    return Status{StatusCode::kInternal, e.what()};
  return Status{StatusCode::kInternal, e.what()};
}

}  // namespace ntr::runtime
