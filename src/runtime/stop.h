#pragma once

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

#include "runtime/status.h"

/// Cooperative cancellation and wall-clock deadlines.
///
/// A StopToken (a Deadline plus a CancelToken) is threaded through the
/// option structs of the long-running loops -- LDRG rounds, parallel
/// candidate chunks, the transient time-march -- which poll it at safe
/// boundaries and unwind with a typed NtrError (kTimeout / kCancelled)
/// when it trips. Polling an un-engaged token is a single inlined bool
/// test, so the default configuration stays bit-identical to, and as
/// fast as, a build without the runtime layer.
namespace ntr::runtime {

/// Read side of a cancellation flag. Copyable, thread-safe; a
/// default-constructed token can never be cancelled.
class CancelToken {
 public:
  CancelToken() = default;

  /// True when this token is connected to a CancelSource.
  [[nodiscard]] bool valid() const { return state_ != nullptr; }
  [[nodiscard]] bool cancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_relaxed);
  }

 private:
  friend class CancelSource;
  explicit CancelToken(std::shared_ptr<const std::atomic<bool>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const std::atomic<bool>> state_;
};

/// Owner side of a cancellation flag. request_cancel() is sticky and may
/// be called from any thread (e.g. a signal-handling or watchdog thread).
class CancelSource {
 public:
  CancelSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void request_cancel() { state_->store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool cancel_requested() const {
    return state_->load(std::memory_order_relaxed);
  }
  [[nodiscard]] CancelToken token() const { return CancelToken{state_}; }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

/// A wall-clock budget against std::chrono::steady_clock. Value type; a
/// default-constructed Deadline is unbounded and never expires.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;  ///< unbounded

  /// Expires `seconds` (clamped to >= 0) from now.
  [[nodiscard]] static Deadline after_s(double seconds);
  [[nodiscard]] static Deadline after_ms(double milliseconds) {
    return after_s(milliseconds / 1e3);
  }
  [[nodiscard]] static Deadline at(Clock::time_point when) {
    Deadline d;
    d.bounded_ = true;
    d.when_ = when;
    return d;
  }

  [[nodiscard]] bool unbounded() const { return !bounded_; }
  [[nodiscard]] bool expired() const {
    return bounded_ && Clock::now() >= when_;
  }
  /// Seconds left; +inf when unbounded, never below 0.
  [[nodiscard]] double remaining_s() const;

 private:
  bool bounded_ = false;
  Clock::time_point when_{};
};

/// The bundle the long-running loops poll: deadline and cancellation in
/// one copyable value. Default-constructed tokens are not engaged and
/// make every poll a trivially-predictable branch.
struct StopToken {
  Deadline deadline{};
  CancelToken cancel{};

  /// True when there is anything to poll (a bounded deadline or a live
  /// cancel token). Loops hoist this test so the un-engaged path costs
  /// one bool check per round, not a clock read.
  [[nodiscard]] bool engaged() const {
    return !deadline.unbounded() || cancel.valid();
  }

  /// kOk, kCancelled (checked first: an explicit cancel beats a
  /// concurrently-expiring deadline), or kTimeout. Monotone: once
  /// non-ok, every later poll is non-ok.
  [[nodiscard]] StatusCode poll() const {
    if (cancel.cancelled()) return StatusCode::kCancelled;
    if (deadline.expired()) return StatusCode::kTimeout;
    return StatusCode::kOk;
  }

  /// Throws NtrError(kTimeout/kCancelled) when tripped. `where` names the
  /// loop for the error message ("ldrg round", "transient march", ...).
  void throw_if_stopped(const char* where) const;
};

}  // namespace ntr::runtime
