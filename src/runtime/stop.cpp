#include "runtime/stop.h"

#include <algorithm>
#include <string>

namespace ntr::runtime {

Deadline Deadline::after_s(double seconds) {
  Deadline d;
  d.bounded_ = true;
  const double clamped = std::max(seconds, 0.0);
  d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(clamped));
  return d;
}

double Deadline::remaining_s() const {
  if (!bounded_) return std::numeric_limits<double>::infinity();
  const auto left = std::chrono::duration<double>(when_ - Clock::now()).count();
  return std::max(left, 0.0);
}

void StopToken::throw_if_stopped(const char* where) const {
  const StatusCode code = poll();
  if (code == StatusCode::kOk) return;
  const char* what =
      code == StatusCode::kCancelled ? "cancelled at " : "deadline expired at ";
  throw NtrError(code, std::string(what) + where);
}

}  // namespace ntr::runtime
