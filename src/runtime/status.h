#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

/// Typed error channel for the ntr library boundaries.
///
/// Internally the library keeps using exceptions (they compose with RAII
/// and cross the thread-pool join cleanly), but every exception that can
/// escape a solver/flow/io entry point now carries a StatusCode, and the
/// `try_*` boundary wrappers convert any escape into a Status/StatusOr so
/// batch drivers can treat one net's singular matrix or timeout as a
/// recoverable per-net outcome instead of process death.
namespace ntr::runtime {

/// Failure categories of the routing runtime. Keep stable: quarantine
/// reports, exit codes, and the fault-injection table key off them.
enum class StatusCode {
  kOk = 0,
  kBadInput,           ///< malformed net/routing/arguments (caller mistake)
  kIoError,            ///< file cannot be opened / read / written
  kSingular,           ///< singular or non-SPD matrix in a solve
  kNonFinite,          ///< NaN/inf appeared in a waveform or solution
  kTimeout,            ///< a Deadline expired before the work finished
  kCancelled,          ///< a CancelToken was triggered
  kResourceExhausted,  ///< allocation or capacity failure
  kUnavailable,        ///< peer refused / unreachable (retry may succeed)
  kConnectionReset,    ///< established connection reset or closed by peer
  kInternal,           ///< contract violation or unclassified failure
};

/// Stable lowercase name ("ok", "bad-input", "singular", ...).
[[nodiscard]] const char* status_code_name(StatusCode code);

/// A StatusCode plus a human-readable message. Cheap to copy when ok.
/// Class-level [[nodiscard]]: every function returning a Status by value
/// forces the caller to look at it (or discard with an explicit (void)),
/// mirroring the ntr_analyze unchecked-status rule at compile time.
class [[nodiscard]] Status {
 public:
  Status() = default;  ///< ok
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status ok_status() { return Status{}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "singular: LuFactorization: singular matrix (n=12, pivot 4)".
  [[nodiscard]] std::string to_string() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// The exception the library throws for recoverable environmental and
/// numerical failures (replacing raw std::runtime_error on the hot
/// paths). Boundary wrappers map it back to its Status.
class NtrError : public std::runtime_error {
 public:
  NtrError(StatusCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}

  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] Status to_status() const { return Status{code_, what()}; }

 private:
  StatusCode code_;
};

/// Maps an exception to the typed channel:
///   NtrError                                  -> its own code
///   invalid_argument / out_of_range / domain  -> kBadInput
///   bad_alloc / length_error                  -> kResourceExhausted
///   other logic_error (ContractViolation)     -> kInternal
///   anything else                             -> kInternal
[[nodiscard]] Status exception_to_status(const std::exception& e);

/// Either a value or a non-ok Status. Minimal absl-flavoured carrier for
/// the library's boundary functions.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok())
      throw std::logic_error("StatusOr: constructed from an ok Status");
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Throws NtrError when not ok, so `value()` misuse surfaces typed.
  [[nodiscard]] T& value() & {
    ensure_ok();
    return *value_;
  }
  [[nodiscard]] const T& value() const& {
    ensure_ok();
    return *value_;
  }
  [[nodiscard]] T&& value() && {
    ensure_ok();
    return *std::move(value_);
  }

  [[nodiscard]] T& operator*() & { return value(); }
  [[nodiscard]] const T& operator*() const& { return value(); }
  [[nodiscard]] T* operator->() { return &value(); }
  [[nodiscard]] const T* operator->() const { return &value(); }

 private:
  void ensure_ok() const {
    if (!ok()) throw NtrError(status_.code(), "StatusOr: " + status_.to_string());
  }

  Status status_;  ///< ok iff value_ holds
  std::optional<T> value_;
};

}  // namespace ntr::runtime
