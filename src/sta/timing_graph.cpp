#include "sta/timing_graph.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "check/contracts.h"
#include "sta/validate.h"

namespace ntr::sta {

NetId TimingGraph::add_net(std::string name) {
  nets_.push_back(Net{std::move(name), kNoId, {}, {}});
  return nets_.size() - 1;
}

GateId TimingGraph::add_gate(std::string name, double delay_s,
                             std::vector<NetId> inputs, NetId output) {
  if (output >= nets_.size())
    throw std::out_of_range("TimingGraph::add_gate: output net out of range");
  if (nets_[output].driver != kNoId)
    throw std::invalid_argument("TimingGraph::add_gate: net already driven: " +
                                nets_[output].name);
  if (delay_s < 0.0)
    throw std::invalid_argument("TimingGraph::add_gate: negative delay");
  const GateId id = gates_.size();
  for (const NetId in : inputs) {
    if (in >= nets_.size())
      throw std::out_of_range("TimingGraph::add_gate: input net out of range");
    nets_[in].sinks.push_back(id);
    nets_[in].sink_delay_s.push_back(0.0);
  }
  nets_[output].driver = id;
  gates_.push_back(Gate{std::move(name), delay_s, std::move(inputs), output});
  return id;
}

void TimingGraph::set_interconnect_delay(NetId net, GateId sink_gate, double delay_s) {
  Net& n = nets_.at(net);
  for (std::size_t i = 0; i < n.sinks.size(); ++i) {
    if (n.sinks[i] == sink_gate) {
      n.sink_delay_s[i] = delay_s;
      return;
    }
  }
  throw std::invalid_argument("set_interconnect_delay: gate is not a sink of net");
}

namespace {

/// Gates in topological order (inputs before outputs); throws on cycles.
std::vector<GateId> topological_gates(const TimingGraph& design) {
  std::vector<std::size_t> pending(design.gate_count(), 0);
  for (GateId g = 0; g < design.gate_count(); ++g) {
    for (const NetId in : design.gate(g).inputs)
      if (!design.is_primary_input(in)) ++pending[g];
  }
  std::queue<GateId> ready;
  for (GateId g = 0; g < design.gate_count(); ++g)
    if (pending[g] == 0) ready.push(g);

  std::vector<GateId> order;
  order.reserve(design.gate_count());
  while (!ready.empty()) {
    const GateId g = ready.front();
    ready.pop();
    order.push_back(g);
    const NetId out = design.gate(g).output;
    for (const GateId sink : design.net(out).sinks)
      if (--pending[sink] == 0) ready.push(sink);
  }
  if (order.size() != design.gate_count())
    throw std::invalid_argument("analyze: combinational cycle in the design");
  return order;
}

}  // namespace

TimingReport analyze(const TimingGraph& design, double clock_period_s) {
  if (clock_period_s <= 0.0)
    throw std::invalid_argument("analyze: clock period must be positive");
  // Cycle detection stays with topological_gates below, which reports it
  // through this function's documented std::invalid_argument contract.
  NTR_DCHECK(check::require(
      validate_timing(design, {.check_cycles = false}),
      "analyze precondition"));
  const std::vector<GateId> order = topological_gates(design);

  TimingReport report;
  report.clock_period_s = clock_period_s;
  report.net_arrival_s.assign(design.net_count(), 0.0);
  report.gate_arrival_s.assign(design.gate_count(), 0.0);

  // Forward pass: arrivals.
  for (const GateId g : order) {
    const TimingGraph::Gate& gate = design.gate(g);
    double latest = 0.0;
    for (const NetId in : gate.inputs) {
      const TimingGraph::Net& net = design.net(in);
      for (std::size_t i = 0; i < net.sinks.size(); ++i) {
        if (net.sinks[i] != g) continue;
        latest = std::max(latest, report.net_arrival_s[in] + net.sink_delay_s[i]);
      }
    }
    report.gate_arrival_s[g] = latest + gate.delay_s;
    report.net_arrival_s[gate.output] = report.gate_arrival_s[g];
  }

  // Backward pass: required times at net driver points.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  report.net_required_s.assign(design.net_count(), kInf);
  for (NetId n = 0; n < design.net_count(); ++n)
    if (design.is_primary_output(n)) report.net_required_s[n] = clock_period_s;
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const TimingGraph::Gate& gate = design.gate(*it);
    const double required_out = report.net_required_s[gate.output];
    for (const NetId in : gate.inputs) {
      const TimingGraph::Net& net = design.net(in);
      for (std::size_t i = 0; i < net.sinks.size(); ++i) {
        if (net.sinks[i] != *it) continue;
        report.net_required_s[in] =
            std::min(report.net_required_s[in],
                     required_out - gate.delay_s - net.sink_delay_s[i]);
      }
    }
  }

  report.net_slack_s.resize(design.net_count());
  report.worst_slack_s = kInf;
  for (NetId n = 0; n < design.net_count(); ++n) {
    report.net_slack_s[n] = report.net_required_s[n] - report.net_arrival_s[n];
    // Dangling nets (no sinks, no path to a PO through gates) keep +inf
    // required; their slack is +inf and does not constrain anything.
    if (report.net_slack_s[n] < report.worst_slack_s)
      report.worst_slack_s = report.net_slack_s[n];
    if (design.is_primary_output(n))
      report.worst_arrival_s = std::max(report.worst_arrival_s, report.net_arrival_s[n]);
  }

  // Critical path: walk back from the latest primary output.
  NetId at = kNoId;
  double worst = -1.0;
  for (NetId n = 0; n < design.net_count(); ++n) {
    if (design.is_primary_output(n) && report.net_arrival_s[n] > worst) {
      worst = report.net_arrival_s[n];
      at = n;
    }
  }
  while (at != kNoId) {
    report.critical_path.push_back(at);
    const GateId driver = design.net(at).driver;
    if (driver == kNoId) break;  // reached a primary input
    // Pick the input pin whose (arrival + interconnect) set the gate.
    const TimingGraph::Gate& gate = design.gate(driver);
    NetId next = kNoId;
    double best = -1.0;
    for (const NetId in : gate.inputs) {
      const TimingGraph::Net& net = design.net(in);
      for (std::size_t i = 0; i < net.sinks.size(); ++i) {
        if (net.sinks[i] != driver) continue;
        const double t = report.net_arrival_s[in] + net.sink_delay_s[i];
        if (t > best) {
          best = t;
          next = in;
        }
      }
    }
    at = next;
  }
  std::reverse(report.critical_path.begin(), report.critical_path.end());
  return report;
}

std::vector<double> sink_criticalities(const TimingGraph& design,
                                       const TimingReport& report, NetId net_id) {
  const TimingGraph::Net& net = design.net(net_id);
  std::vector<double> alpha(net.sinks.size(), 0.0);
  for (std::size_t i = 0; i < net.sinks.size(); ++i) {
    const GateId g = net.sinks[i];
    // Pin-specific slack: how much later this pin could switch without
    // violating the period through ITS fan-out cone.
    const double pin_required = report.net_required_s[design.gate(g).output] -
                                design.gate(g).delay_s - net.sink_delay_s[i];
    const double pin_slack =
        pin_required - report.net_arrival_s[net_id];
    if (std::isfinite(pin_slack)) {
      alpha[i] = std::max(0.0, (report.clock_period_s - pin_slack) /
                                   report.clock_period_s);
    }
  }
  return alpha;
}

}  // namespace ntr::sta
