#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ntr::sta {

using GateId = std::size_t;
using NetId = std::size_t;
inline constexpr std::size_t kNoId = static_cast<std::size_t>(-1);

/// A combinational gate-level design: gates with a fixed intrinsic delay,
/// connected by nets. Each net has one driver (a gate output or a primary
/// input) and any number of sink gate pins; each (net, sink) pin carries
/// an *interconnect* delay, which is exactly what this library's routing
/// constructions + delay evaluators produce. The paper's Section 5.1
/// motivates critical-sink routing with "timing information obtained
/// during the performance-driven placement phase" -- this module is that
/// information source.
class TimingGraph {
 public:
  /// Adds a net. Nets start driverless (primary inputs until a gate
  /// claims them as output).
  NetId add_net(std::string name);

  /// Adds a gate with intrinsic `delay_s`, reading `inputs` and driving
  /// `output`. Throws if the output net already has a driver.
  GateId add_gate(std::string name, double delay_s, std::vector<NetId> inputs,
                  NetId output);

  /// Interconnect delay from the net's driver to one of its sink pins
  /// (identified by the sink gate and its input position on that gate).
  void set_interconnect_delay(NetId net, GateId sink_gate, double delay_s);

  [[nodiscard]] std::size_t net_count() const { return nets_.size(); }
  [[nodiscard]] std::size_t gate_count() const { return gates_.size(); }
  [[nodiscard]] const std::string& net_name(NetId n) const { return nets_.at(n).name; }
  [[nodiscard]] const std::string& gate_name(GateId g) const {
    return gates_.at(g).name;
  }
  [[nodiscard]] bool is_primary_input(NetId n) const {
    return nets_.at(n).driver == kNoId;
  }
  [[nodiscard]] bool is_primary_output(NetId n) const {
    return nets_.at(n).sinks.empty();
  }

  struct Net {
    std::string name;
    GateId driver = kNoId;        ///< kNoId = primary input
    std::vector<GateId> sinks;    ///< gates reading this net
    std::vector<double> sink_delay_s;  ///< interconnect delay per sink
  };
  struct Gate {
    std::string name;
    double delay_s = 0.0;
    std::vector<NetId> inputs;
    NetId output = kNoId;
  };

  [[nodiscard]] const Net& net(NetId n) const { return nets_.at(n); }
  [[nodiscard]] const Gate& gate(GateId g) const { return gates_.at(g); }

 private:
  std::vector<Net> nets_;
  std::vector<Gate> gates_;
};

/// Full forward/backward static timing analysis result.
struct TimingReport {
  double clock_period_s = 0.0;
  std::vector<double> net_arrival_s;    ///< at the net's driver point
  std::vector<double> gate_arrival_s;   ///< at the gate output
  std::vector<double> net_required_s;   ///< latest tolerable driver-point time
  std::vector<double> net_slack_s;      ///< required - arrival per net
  double worst_arrival_s = 0.0;         ///< critical path delay
  double worst_slack_s = 0.0;
  std::vector<NetId> critical_path;     ///< nets along the worst path, PI -> PO
};

/// Topological forward (arrival) and backward (required/slack) passes.
/// Throws std::invalid_argument on combinational cycles.
TimingReport analyze(const TimingGraph& design, double clock_period_s);

/// Criticality alpha_i of each sink pin of `net`, in sink order:
/// max(0, (period - slack_of_that_pin) / period). Slack-free pins get 0;
/// pins on the critical path get values near (or above) 1. This is the
/// alpha vector the CSORG formulation consumes.
std::vector<double> sink_criticalities(const TimingGraph& design,
                                       const TimingReport& report, NetId net);

}  // namespace ntr::sta
