#pragma once

#include <cmath>
#include <cstddef>
#include <queue>
#include <string>
#include <vector>

#include "check/validation.h"
#include "sta/timing_graph.h"

namespace ntr::sta {

struct TimingValidateOptions {
  /// Detect combinational cycles (Kahn's algorithm over the gate DAG).
  /// sta::analyze() reports cycles through its own documented exception,
  /// so its internal precondition check disables this to keep that
  /// contract observable.
  bool check_cycles = true;
};

/// Validates a gate-level TimingGraph: driver/output cross-references,
/// sink/delay array agreement, sink gates actually reading the net,
/// finite non-negative delays, and (optionally) acyclicity.
inline check::ValidationReport validate_timing(const TimingGraph& design,
                                        const TimingValidateOptions& options = {}) {
  check::ValidationReport report;

  for (GateId g = 0; g < design.gate_count(); ++g) {
    const TimingGraph::Gate& gate = design.gate(g);
    const std::string tag = "gate " + gate.name;
    if (!(gate.delay_s >= 0.0) || !std::isfinite(gate.delay_s))
      report.errors.push_back(tag + ": bad delay " + std::to_string(gate.delay_s));
    if (gate.output >= design.net_count()) {
      report.errors.push_back(tag + ": output net out of range");
    } else if (design.net(gate.output).driver != g) {
      report.errors.push_back(tag + ": output net does not list it as driver");
    }
    for (const NetId in : gate.inputs)
      if (in >= design.net_count())
        report.errors.push_back(tag + ": input net out of range");
  }

  for (NetId n = 0; n < design.net_count(); ++n) {
    const TimingGraph::Net& net = design.net(n);
    const std::string tag = "net " + net.name;
    if (net.driver != kNoId) {
      if (net.driver >= design.gate_count()) {
        report.errors.push_back(tag + ": driver gate out of range");
      } else if (design.gate(net.driver).output != n) {
        report.errors.push_back(tag + ": driver gate does not output it");
      }
    }
    if (net.sinks.size() != net.sink_delay_s.size()) {
      report.errors.push_back(tag + ": " + std::to_string(net.sinks.size()) +
                              " sinks but " + std::to_string(net.sink_delay_s.size()) +
                              " interconnect delays");
    }
    for (std::size_t i = 0; i < net.sinks.size(); ++i) {
      const GateId sink = net.sinks[i];
      if (sink >= design.gate_count()) {
        report.errors.push_back(tag + ": sink gate out of range");
        continue;
      }
      bool reads = false;
      for (const NetId in : design.gate(sink).inputs) reads |= in == n;
      if (!reads)
        report.errors.push_back(tag + ": sink gate " + design.gate_name(sink) +
                                " does not read it");
      if (i < net.sink_delay_s.size() &&
          (!(net.sink_delay_s[i] >= 0.0) || !std::isfinite(net.sink_delay_s[i])))
        report.errors.push_back(tag + ": bad interconnect delay " +
                                std::to_string(net.sink_delay_s[i]));
    }
  }

  if (options.check_cycles && report.ok()) {
    std::vector<std::size_t> pending(design.gate_count(), 0);
    for (GateId g = 0; g < design.gate_count(); ++g)
      for (const NetId in : design.gate(g).inputs)
        if (!design.is_primary_input(in)) ++pending[g];
    std::queue<GateId> ready;
    for (GateId g = 0; g < design.gate_count(); ++g)
      if (pending[g] == 0) ready.push(g);
    std::size_t ordered = 0;
    while (!ready.empty()) {
      const GateId g = ready.front();
      ready.pop();
      ++ordered;
      for (const GateId sink : design.net(design.gate(g).output).sinks)
        if (--pending[sink] == 0) ready.push(sink);
    }
    if (ordered != design.gate_count())
      report.errors.emplace_back("combinational cycle through " +
                                 std::to_string(design.gate_count() - ordered) +
                                 " gate(s)");
  }
  return report;
}

}  // namespace ntr::sta
