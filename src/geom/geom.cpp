#include <algorithm>
#include <ostream>
#include <unordered_set>

#include "geom/hanan.h"
#include "geom/point.h"

namespace ntr::geom {

std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << '(' << p.x << ", " << p.y << ')';
}

namespace {

std::vector<double> sorted_unique_coords(std::span<const Point> pins, bool use_x) {
  std::vector<double> coords;
  coords.reserve(pins.size());
  for (const Point& p : pins) coords.push_back(use_x ? p.x : p.y);
  std::sort(coords.begin(), coords.end());
  coords.erase(std::unique(coords.begin(), coords.end()), coords.end());
  return coords;
}

}  // namespace

std::vector<Point> hanan_grid_full(std::span<const Point> pins) {
  const std::vector<double> xs = sorted_unique_coords(pins, /*use_x=*/true);
  const std::vector<double> ys = sorted_unique_coords(pins, /*use_x=*/false);
  std::vector<Point> grid;
  grid.reserve(xs.size() * ys.size());
  for (const double x : xs)
    for (const double y : ys) grid.push_back(Point{x, y});
  return grid;
}

std::vector<Point> hanan_grid(std::span<const Point> pins) {
  std::unordered_set<Point> pin_set(pins.begin(), pins.end());
  std::vector<Point> grid = hanan_grid_full(pins);
  std::erase_if(grid, [&pin_set](const Point& p) { return pin_set.contains(p); });
  return grid;
}

}  // namespace ntr::geom
