#include "geom/segments.h"

#include <algorithm>
#include <map>
#include <utility>

namespace ntr::geom {

std::vector<Segment> l_route(const Point& p, const Point& q) {
  std::vector<Segment> route;
  if (p.x != q.x) {
    route.push_back(Segment{true, p.y, std::min(p.x, q.x), std::max(p.x, q.x)});
  }
  if (p.y != q.y) {
    // The vertical leg runs at the *destination* x (horizontal-first).
    route.push_back(Segment{false, q.x, std::min(p.y, q.y), std::max(p.y, q.y)});
  }
  return route;
}

double total_length(std::span<const Segment> segments) {
  double sum = 0.0;
  for (const Segment& s : segments) sum += s.length();
  return sum;
}

double union_length(std::span<const Segment> segments) {
  // Group intervals by (orientation, track coordinate), then merge.
  std::map<std::pair<bool, double>, std::vector<std::pair<double, double>>> tracks;
  for (const Segment& s : segments) {
    if (s.length() <= 0.0) continue;
    tracks[{s.horizontal, s.fixed}].emplace_back(s.a, s.b);
  }

  double result = 0.0;
  for (auto& [track, intervals] : tracks) {
    std::sort(intervals.begin(), intervals.end());
    double cover_lo = intervals.front().first;
    double cover_hi = intervals.front().second;
    for (const auto& [lo, hi] : intervals) {
      if (lo > cover_hi) {
        result += cover_hi - cover_lo;
        cover_lo = lo;
        cover_hi = hi;
      } else {
        cover_hi = std::max(cover_hi, hi);
      }
    }
    result += cover_hi - cover_lo;
  }
  return result;
}

}  // namespace ntr::geom
