#pragma once

#include <span>
#include <vector>

#include "geom/point.h"

namespace ntr::geom {

/// Hanan grid of a pin set: the intersections of horizontal and vertical
/// lines through every pin. Hanan's theorem guarantees an optimal
/// rectilinear Steiner tree using only these points, which is why the
/// Iterated 1-Steiner algorithm (used by SLDRG, paper refs [2,3,13])
/// draws its candidate Steiner points from this set.
///
/// Returns all grid points that are NOT already pins (candidates only).
std::vector<Point> hanan_grid(std::span<const Point> pins);

/// All Hanan grid points including the pins themselves.
std::vector<Point> hanan_grid_full(std::span<const Point> pins);

}  // namespace ntr::geom
