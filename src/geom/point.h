#pragma once

#include <cmath>
#include <compare>
#include <cstddef>
#include <functional>
#include <iosfwd>

namespace ntr::geom {

/// A point in the Manhattan plane. Coordinates are in micrometers, matching
/// the per-unit-length interconnect parameters of the 0.8um technology
/// (Table 1 of the paper).
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend constexpr bool operator==(const Point&, const Point&) = default;
  friend constexpr auto operator<=>(const Point&, const Point&) = default;
};

/// Manhattan (L1) distance; this is the wirelength of a rectilinear
/// connection between two pins and the edge-cost metric used throughout
/// the paper.
constexpr double manhattan_distance(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return (dx < 0 ? -dx : dx) + (dy < 0 ? -dy : dy);
}

/// Euclidean (L2) distance; provided for diagnostics and plotting only.
inline double euclidean_distance(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Chebyshev (L-infinity) distance.
constexpr double chebyshev_distance(const Point& a, const Point& b) {
  const double dx = a.x > b.x ? a.x - b.x : b.x - a.x;
  const double dy = a.y > b.y ? a.y - b.y : b.y - a.y;
  return dx > dy ? dx : dy;
}

/// Midpoint of the segment ab (not generally a Hanan point).
constexpr Point midpoint(const Point& a, const Point& b) {
  return Point{(a.x + b.x) / 2.0, (a.y + b.y) / 2.0};
}

/// True iff c lies inside (or on the boundary of) the smallest axis-aligned
/// rectangle containing a and b. For such points,
/// manhattan(a,c) + manhattan(c,b) == manhattan(a,b).
constexpr bool within_bounding_box(const Point& a, const Point& b, const Point& c) {
  const double lox = a.x < b.x ? a.x : b.x;
  const double hix = a.x < b.x ? b.x : a.x;
  const double loy = a.y < b.y ? a.y : b.y;
  const double hiy = a.y < b.y ? b.y : a.y;
  return lox <= c.x && c.x <= hix && loy <= c.y && c.y <= hiy;
}

std::ostream& operator<<(std::ostream& os, const Point& p);

}  // namespace ntr::geom

template <>
struct std::hash<ntr::geom::Point> {
  std::size_t operator()(const ntr::geom::Point& p) const noexcept {
    const std::size_t hx = std::hash<double>{}(p.x);
    const std::size_t hy = std::hash<double>{}(p.y);
    return hx ^ (hy + 0x9e3779b97f4a7c15ULL + (hx << 6) + (hx >> 2));
  }
};
