#pragma once

#include <algorithm>
#include <limits>
#include <span>

#include "geom/point.h"

namespace ntr::geom {

/// Axis-aligned bounding box. An empty box (no points added) reports
/// `empty() == true` and zero extents.
class BBox {
 public:
  BBox() = default;

  /// Bounding box of a point set.
  explicit BBox(std::span<const Point> points) {
    for (const Point& p : points) expand(p);
  }

  void expand(const Point& p) {
    lo_x_ = std::min(lo_x_, p.x);
    lo_y_ = std::min(lo_y_, p.y);
    hi_x_ = std::max(hi_x_, p.x);
    hi_y_ = std::max(hi_y_, p.y);
  }

  [[nodiscard]] bool empty() const { return lo_x_ > hi_x_; }
  [[nodiscard]] double width() const { return empty() ? 0.0 : hi_x_ - lo_x_; }
  [[nodiscard]] double height() const { return empty() ? 0.0 : hi_y_ - lo_y_; }

  /// Half-perimeter wirelength: a classical lower bound on the cost of any
  /// rectilinear tree spanning the points.
  [[nodiscard]] double half_perimeter() const { return width() + height(); }

  [[nodiscard]] double lo_x() const { return lo_x_; }
  [[nodiscard]] double lo_y() const { return lo_y_; }
  [[nodiscard]] double hi_x() const { return hi_x_; }
  [[nodiscard]] double hi_y() const { return hi_y_; }

  [[nodiscard]] bool contains(const Point& p) const {
    return !empty() && lo_x_ <= p.x && p.x <= hi_x_ && lo_y_ <= p.y && p.y <= hi_y_;
  }

 private:
  double lo_x_ = std::numeric_limits<double>::infinity();
  double lo_y_ = std::numeric_limits<double>::infinity();
  double hi_x_ = -std::numeric_limits<double>::infinity();
  double hi_y_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ntr::geom
