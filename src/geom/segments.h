#pragma once

#include <span>
#include <vector>

#include "geom/point.h"

namespace ntr::geom {

/// An axis-parallel wire segment. Horizontal segments have y fixed
/// (a = left x, b = right x); vertical ones x fixed (a = bottom y,
/// b = top y). Always normalized so a <= b.
struct Segment {
  bool horizontal = true;
  double fixed = 0.0;  ///< the invariant coordinate (y if horizontal)
  double a = 0.0;      ///< lower varying coordinate
  double b = 0.0;      ///< upper varying coordinate

  [[nodiscard]] double length() const { return b - a; }
  friend bool operator==(const Segment&, const Segment&) = default;
};

/// Embeds the connection from p to q as an L-shaped route: horizontal
/// first, then vertical (the same convention the SVG renderer draws).
/// Degenerate (already axis-aligned) connections yield one segment;
/// coincident points none.
std::vector<Segment> l_route(const Point& p, const Point& q);

/// Total metal length of a segment set with overlaps counted ONCE: union
/// length per (orientation, track) after interval merging. This is the
/// physically honest wirelength of an embedded routing -- when two edges
/// share a track (or LDRG adds a wire parallel to an existing one, the
/// situation Section 5.2 of the paper turns into wire *sizing*), the
/// naive sum of edge lengths double-counts the shared metal.
double union_length(std::span<const Segment> segments);

/// Plain sum of segment lengths (double-counts overlaps); the difference
/// against union_length is the overlap amount.
double total_length(std::span<const Segment> segments);

}  // namespace ntr::geom
