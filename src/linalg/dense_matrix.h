#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/vector_ops.h"

namespace ntr::linalg {

/// Row-major dense square-or-rectangular matrix of doubles. Circuit
/// matrices from 30-pin nets with a few pi-segments per edge stay well
/// under ~10^3 nodes, where dense factorization is both simpler and faster
/// than sparse alternatives; the CSR/CG path covers larger systems.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  static DenseMatrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  /// y = A x
  [[nodiscard]] Vector multiply(std::span<const double> x) const;

  DenseMatrix& operator+=(const DenseMatrix& other);
  DenseMatrix& operator*=(double alpha);

  [[nodiscard]] double max_abs() const;
  [[nodiscard]] bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting (Doolittle). Factor once, solve
/// many right-hand sides -- the access pattern of a fixed-step transient
/// simulation, where (G + 2C/h) is factored once per topology.
class LuFactorization {
 public:
  /// Throws ntr::runtime::NtrError (StatusCode::kSingular, with the
  /// matrix dimension and failing pivot column in the message) if the
  /// matrix is singular to working precision.
  explicit LuFactorization(DenseMatrix a);

  [[nodiscard]] std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Determinant sign-and-magnitude via the diagonal of U (for testing).
  [[nodiscard]] double determinant() const;

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// Cholesky factorization A = L L^T for symmetric positive definite
/// matrices (conductance matrices of connected RC networks are SPD once
/// grounded). Roughly half the work of LU; throws ntr::runtime::NtrError
/// (StatusCode::kSingular) if the matrix is not positive definite.
class CholeskyFactorization {
 public:
  explicit CholeskyFactorization(DenseMatrix a);

  [[nodiscard]] std::size_t size() const { return l_.rows(); }
  [[nodiscard]] Vector solve(std::span<const double> b) const;

 private:
  DenseMatrix l_;
};

}  // namespace ntr::linalg
