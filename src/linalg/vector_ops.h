#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <stdexcept>
#include <vector>

namespace ntr::linalg {

using Vector = std::vector<double>;

inline double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw std::invalid_argument("dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

/// y += alpha * x
inline void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  if (x.size() != y.size()) throw std::invalid_argument("axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void scale(double alpha, std::span<double> x) {
  for (double& v : x) v *= alpha;
}

inline double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

inline double norm_inf(std::span<const double> x) {
  double m = 0.0;
  for (const double v : x) m = std::max(m, std::abs(v));
  return m;
}

}  // namespace ntr::linalg
