#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/sparse.h"
#include "linalg/vector_ops.h"

namespace ntr::linalg {

/// Reverse Cuthill-McKee ordering of a symmetric sparsity pattern:
/// a permutation that clusters nonzeros near the diagonal, shrinking the
/// bandwidth (and with it, the fill-in of a banded/envelope
/// factorization). Classic companion of grid- and circuit-shaped
/// matrices, whose natural orderings are already near-banded.
std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& pattern);

/// Envelope (skyline) Cholesky factorization for sparse SPD matrices:
/// rows are stored from their first nonzero column to the diagonal; all
/// fill-in stays inside that envelope, so after a bandwidth-reducing
/// permutation the cost is O(n * b^2) for bandwidth b instead of dense
/// O(n^3). For conductance matrices of routing graphs (near-planar,
/// low-degree) this is the scalable path the dense CholeskyFactorization
/// cannot provide beyond a few hundred nodes.
class EnvelopeCholesky {
 public:
  /// Factors P A P^T where P is reverse_cuthill_mckee(A)'s permutation
  /// (pass reorder = false to keep the natural order). Throws
  /// ntr::runtime::NtrError (StatusCode::kSingular) if A is not
  /// positive definite.
  explicit EnvelopeCholesky(const CsrMatrix& a, bool reorder = true);

  [[nodiscard]] std::size_t size() const { return row_start_.size() - 1; }

  /// Solves A x = b (the permutation is handled internally).
  [[nodiscard]] Vector solve(std::span<const double> b) const;

  /// Envelope size (stored entries) -- for tests and the scaling bench.
  [[nodiscard]] std::size_t stored_entries() const { return values_.size(); }

 private:
  // Row-envelope storage of L: row i spans columns [first_col_[i], i].
  std::vector<std::size_t> first_col_;
  std::vector<std::size_t> row_start_;  // prefix offsets into values_
  std::vector<double> values_;
  std::vector<std::size_t> perm_;      // new index -> old index
  std::vector<std::size_t> inv_perm_;  // old index -> new index

  [[nodiscard]] double entry(std::size_t r, std::size_t c) const {
    return c >= first_col_[r] ? values_[row_start_[r] + (c - first_col_[r])] : 0.0;
  }
};

}  // namespace ntr::linalg
