#include "linalg/sparse.h"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "runtime/status.h"

namespace ntr::linalg {

void TripletBuilder::add(std::size_t r, std::size_t c, double v) {
  if (r >= rows_ || c >= cols_)
    throw std::out_of_range("TripletBuilder::add: index out of range");
  // ntr-alloc-in-hot-path(amortized builder growth; nnz is unknowable up front)
  if (v != 0.0) entries_.push_back({r, c, v});
}

CsrMatrix::CsrMatrix(const TripletBuilder& builder) : cols_(builder.cols()) {
  const std::size_t n_rows = builder.rows();
  std::vector<TripletBuilder::Triplet> sorted(builder.triplets().begin(),
                                              builder.triplets().end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              return a.r != b.r ? a.r < b.r : a.c < b.c;
            });

  row_ptr_.assign(n_rows + 1, 0);
  for (std::size_t i = 0; i < sorted.size();) {
    std::size_t j = i + 1;
    double sum = sorted[i].v;
    while (j < sorted.size() && sorted[j].r == sorted[i].r && sorted[j].c == sorted[i].c) {
      sum += sorted[j].v;
      ++j;
    }
    if (sum != 0.0) {
      col_idx_.push_back(sorted[i].c);
      values_.push_back(sum);
      ++row_ptr_[sorted[i].r + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < n_rows; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

Vector CsrMatrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("CsrMatrix::multiply: size");
  Vector y(rows(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      s += values_[k] * x[col_idx_[k]];
    y[r] = s;
  }
  return y;
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  if (r >= rows() || c >= cols_) throw std::out_of_range("CsrMatrix::at");
  for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
    if (col_idx_[k] == c) return values_[k];
  return 0.0;
}

Vector CsrMatrix::diagonal() const {
  Vector d(rows(), 0.0);
  for (std::size_t r = 0; r < rows(); ++r) d[r] = at(r, r);
  return d;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix m(rows(), cols_);
  for (std::size_t r = 0; r < rows(); ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      m(r, col_idx_[k]) = values_[k];
  return m;
}

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            double rel_tolerance, std::size_t max_iters) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("conjugate_gradient: shape mismatch");

  Vector inv_diag = a.diagonal();
  for (double& d : inv_diag) {
    if (d <= 0.0)
      throw runtime::NtrError(
          runtime::StatusCode::kSingular,
          "conjugate_gradient: non-positive diagonal (not SPD?)");
    d = 1.0 / d;
  }

  CgResult result;
  result.x.assign(n, 0.0);
  Vector r(b.begin(), b.end());
  const double b_norm = norm2(b);
  if (b_norm == 0.0) return result;  // x = 0 solves exactly

  Vector z(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
  Vector p = z;
  double rz = dot(r, z);

  for (std::size_t it = 0; it < max_iters; ++it) {
    const Vector ap = a.multiply(p);
    const double alpha = rz / dot(p, ap);
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    result.residual_norm = norm2(r);
    result.iterations = it + 1;
    if (result.residual_norm <= rel_tolerance * b_norm) return result;
    for (std::size_t i = 0; i < n; ++i) z[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, z);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  throw runtime::NtrError(
      runtime::StatusCode::kNonFinite,
      "conjugate_gradient: did not converge in " + std::to_string(max_iters) +
          " iterations (n=" + std::to_string(n) + ", residual " +
          std::to_string(result.residual_norm) + ")");
}

}  // namespace ntr::linalg
