#include "linalg/sparse_cholesky.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <stdexcept>
#include <string>

#include "check/faultinject.h"
#include "runtime/status.h"

namespace ntr::linalg {

std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& pattern) {
  const std::size_t n = pattern.rows();
  if (pattern.cols() != n)
    throw std::invalid_argument("reverse_cuthill_mckee: matrix must be square");

  // Adjacency (off-diagonal pattern) and degrees.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      if (c != r && pattern.at(r, c) != 0.0) adj[r].push_back(c);
    }
  }
  const auto degree = [&](std::size_t v) { return adj[v].size(); };

  std::vector<std::size_t> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);

  while (order.size() < n) {
    // Start each component from a minimum-degree vertex (a cheap stand-in
    // for a pseudo-peripheral vertex).
    std::size_t start = n;
    for (std::size_t v = 0; v < n; ++v) {
      if (!visited[v] && (start == n || degree(v) < degree(start))) start = v;
    }
    visited[start] = true;
    std::queue<std::size_t> frontier;
    frontier.push(start);
    while (!frontier.empty()) {
      const std::size_t v = frontier.front();
      frontier.pop();
      order.push_back(v);
      std::vector<std::size_t> next;
      for (const std::size_t w : adj[v])
        if (!visited[w]) {
          visited[w] = true;
          next.push_back(w);
        }
      std::sort(next.begin(), next.end(),
                [&](std::size_t a, std::size_t b) { return degree(a) < degree(b); });
      for (const std::size_t w : next) frontier.push(w);
    }
  }
  std::reverse(order.begin(), order.end());
  return order;  // order[new_index] = old_index
}

EnvelopeCholesky::EnvelopeCholesky(const CsrMatrix& a, bool reorder) {
  const std::size_t n = a.rows();
  if (a.cols() != n)
    throw std::invalid_argument("EnvelopeCholesky: matrix must be square");

  perm_.resize(n);
  if (reorder) {
    perm_ = reverse_cuthill_mckee(a);
  } else {
    std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  }
  inv_perm_.resize(n);
  for (std::size_t i = 0; i < n; ++i) inv_perm_[perm_[i]] = i;

  // Envelope of the permuted matrix: first nonzero column per row.
  first_col_.assign(n, 0);
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t first = r;
    for (std::size_t c = 0; c < n; ++c) {
      if (a.at(perm_[r], perm_[c]) != 0.0) {
        first = std::min(first, c);
        break;  // columns scanned in order: the first hit is the minimum
      }
    }
    first_col_[r] = std::min(first, r);
  }
  // Cholesky fill keeps each row's envelope but rows below can only grow
  // toward columns >= their own first_col; the row envelope is final.
  row_start_.assign(n + 1, 0);
  for (std::size_t r = 0; r < n; ++r)
    row_start_[r + 1] = row_start_[r] + (r - first_col_[r] + 1);
  values_.assign(row_start_[n], 0.0);

  // Load A (lower triangle) into the envelope.
  for (std::size_t r = 0; r < n; ++r)
    for (std::size_t c = first_col_[r]; c <= r; ++c)
      values_[row_start_[r] + (c - first_col_[r])] = a.at(perm_[r], perm_[c]);

  // Envelope Cholesky (row-oriented, in place).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = first_col_[i]; j < i; ++j) {
      // l_ij = (a_ij - sum_{k} l_ik l_jk) / l_jj over the shared envelope.
      const std::size_t k_lo = std::max(first_col_[i], first_col_[j]);
      double s = values_[row_start_[i] + (j - first_col_[i])];
      for (std::size_t k = k_lo; k < j; ++k)
        s -= entry(i, k) * entry(j, k);
      values_[row_start_[i] + (j - first_col_[i])] = s / entry(j, j);
    }
    double d = values_[row_start_[i] + (i - first_col_[i])];
    for (std::size_t k = first_col_[i]; k < i; ++k) d -= entry(i, k) * entry(i, k);
    NTR_FAULT_POINT(kCholeskyNotSpd);
    if (d <= 0.0)
      throw runtime::NtrError(
          runtime::StatusCode::kSingular,
          "EnvelopeCholesky: matrix not positive definite (n=" +
              std::to_string(n) + ", pivot " + std::to_string(i) +
              " reduced to " + std::to_string(d) + ")");
    values_[row_start_[i] + (i - first_col_[i])] = std::sqrt(d);
  }
}

Vector EnvelopeCholesky::solve(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("EnvelopeCholesky::solve: size");

  // Permute, forward-substitute (L y = Pb), back-substitute (L^T z = y),
  // un-permute.
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t k = first_col_[i]; k < i; ++k) s -= entry(i, k) * y[k];
    y[i] = s / entry(i, i);
  }
  Vector z(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double s = y[ii];
    // Column ii of L below the diagonal: rows whose envelope reaches ii.
    for (std::size_t r = ii + 1; r < n; ++r) {
      if (first_col_[r] <= ii) s -= entry(r, ii) * z[r];
    }
    z[ii] = s / entry(ii, ii);
  }
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

}  // namespace ntr::linalg
