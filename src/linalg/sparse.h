#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/dense_matrix.h"
#include "linalg/vector_ops.h"

namespace ntr::linalg {

/// Coordinate-format accumulator: stamp (row, col, value) contributions in
/// any order (duplicates sum, as circuit stamping requires), then freeze
/// into CSR.
class TripletBuilder {
 public:
  TripletBuilder(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {}

  void add(std::size_t r, std::size_t c, double v);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }

  struct Triplet {
    std::size_t r, c;
    double v;
  };
  [[nodiscard]] std::span<const Triplet> triplets() const { return entries_; }

 private:
  std::size_t rows_, cols_;
  std::vector<Triplet> entries_;
};

/// Compressed sparse row matrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  explicit CsrMatrix(const TripletBuilder& builder);

  [[nodiscard]] std::size_t rows() const { return row_ptr_.empty() ? 0 : row_ptr_.size() - 1; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return values_.size(); }

  /// y = A x
  [[nodiscard]] Vector multiply(std::span<const double> x) const;

  [[nodiscard]] double at(std::size_t r, std::size_t c) const;
  [[nodiscard]] Vector diagonal() const;

  [[nodiscard]] DenseMatrix to_dense() const;

 private:
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

/// Preconditioned conjugate gradient for SPD systems. Jacobi (diagonal)
/// preconditioner -- effective for diagonally dominant conductance
/// matrices. Returns the iteration count used; throws
/// ntr::runtime::NtrError if the tolerance is not reached within
/// max_iters.
struct CgResult {
  Vector x;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

CgResult conjugate_gradient(const CsrMatrix& a, std::span<const double> b,
                            double rel_tolerance = 1e-10,
                            std::size_t max_iters = 10'000);

}  // namespace ntr::linalg
