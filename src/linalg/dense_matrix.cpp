#include "linalg/dense_matrix.h"

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <string>

#include "check/faultinject.h"
#include "runtime/status.h"

namespace ntr::linalg {

DenseMatrix DenseMatrix::identity(std::size_t n) {
  DenseMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Vector DenseMatrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) throw std::invalid_argument("DenseMatrix::multiply: size");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const std::span<const double> rr = row(r);
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += rr[c] * x[c];
    y[r] = s;
  }
  return y;
}

DenseMatrix& DenseMatrix::operator+=(const DenseMatrix& other) {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("DenseMatrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

DenseMatrix& DenseMatrix::operator*=(double alpha) {
  for (double& v : data_) v *= alpha;
  return *this;
}

double DenseMatrix::max_abs() const {
  double m = 0.0;
  for (const double v : data_) m = std::max(m, std::abs(v));
  return m;
}

bool DenseMatrix::is_symmetric(double tol) const {
  if (rows_ != cols_) return false;
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = r + 1; c < cols_; ++c)
      if (std::abs((*this)(r, c) - (*this)(c, r)) > tol) return false;
  return true;
}

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols())
    throw std::invalid_argument("LuFactorization: matrix must be square");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest magnitude in column k at/below row k.
    std::size_t pivot = k;
    double pivot_mag = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::abs(lu_(r, k));
      if (mag > pivot_mag) {
        pivot = r;
        pivot_mag = mag;
      }
    }
    NTR_FAULT_POINT(kLuSingular);
    if (pivot_mag == 0.0)
      throw runtime::NtrError(
          runtime::StatusCode::kSingular,
          "LuFactorization: singular matrix (n=" + std::to_string(n) +
              ", pivot column " + std::to_string(k) + " has no nonzero entry)");
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuFactorization::solve(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("LuFactorization::solve: size");
  Vector x(n);
  // Apply permutation and forward substitution (L has unit diagonal).
  for (std::size_t r = 0; r < n; ++r) {
    double s = b[perm_[r]];
    for (std::size_t c = 0; c < r; ++c) s -= lu_(r, c) * x[c];
    x[r] = s;
  }
  // Back substitution with U.
  for (std::size_t ri = n; ri-- > 0;) {
    double s = x[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= lu_(ri, c) * x[c];
    x[ri] = s / lu_(ri, ri);
  }
  return x;
}

double LuFactorization::determinant() const {
  double det = perm_sign_;
  for (std::size_t i = 0; i < size(); ++i) det *= lu_(i, i);
  return det;
}

CholeskyFactorization::CholeskyFactorization(DenseMatrix a) : l_(std::move(a)) {
  if (l_.rows() != l_.cols())
    throw std::invalid_argument("CholeskyFactorization: matrix must be square");
  const std::size_t n = l_.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = l_(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l_(j, k) * l_(j, k);
    NTR_FAULT_POINT(kCholeskyNotSpd);
    if (diag <= 0.0)
      throw runtime::NtrError(
          runtime::StatusCode::kSingular,
          "CholeskyFactorization: matrix not positive definite (n=" +
              std::to_string(n) + ", pivot " + std::to_string(j) +
              " reduced to " + std::to_string(diag) + ")");
    const double ljj = std::sqrt(diag);
    l_(j, j) = ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = l_(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l_(i, k) * l_(j, k);
      l_(i, j) = s / ljj;
    }
    // Zero the strictly-upper part so l_ is exactly L.
    for (std::size_t c = j + 1; c < n; ++c) l_(j, c) = 0.0;
  }
}

Vector CholeskyFactorization::solve(std::span<const double> b) const {
  const std::size_t n = size();
  if (b.size() != n) throw std::invalid_argument("CholeskyFactorization::solve: size");
  Vector y(n);
  for (std::size_t r = 0; r < n; ++r) {
    double s = b[r];
    for (std::size_t c = 0; c < r; ++c) s -= l_(r, c) * y[c];
    y[r] = s / l_(r, r);
  }
  Vector x(n);
  for (std::size_t ri = n; ri-- > 0;) {
    double s = y[ri];
    for (std::size_t c = ri + 1; c < n; ++c) s -= l_(c, ri) * x[c];
    x[ri] = s / l_(ri, ri);
  }
  return x;
}

}  // namespace ntr::linalg
