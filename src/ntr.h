#pragma once

/// \mainpage ntr -- Non-Tree Routing
///
/// Umbrella header for the Non-Tree Routing library (McCoy & Robins,
/// DATE 1994 reproduction). Include this for everything, or pick the
/// per-module headers to keep compile times down:
///
///   geom/     points, Manhattan metric, Hanan grid, rectilinear segments
///   graph/    routing graphs with cycles, MST, paths, bridges, embedding
///   linalg/   dense LU/Cholesky, CSR + conjugate gradient
///   spice/    Table-1 technology, linear netlists, deck I/O, graph->RC
///   sim/      MNA, DC/moments, transient engine (the SPICE substitute)
///   delay/    Elmore (tree + graph), D2M, bounds, Sherman-Morrison
///             screener, pluggable DelayEvaluator
///   steiner/  Iterated 1-Steiner
///   route/    star/SPT, Prim-Dijkstra, BRBC, ERT/SERT
///   core/     LDRG, SLDRG, H1-H3, screened LDRG, exhaustive ORG,
///             wire sizing (WSORG), solve() facade  -- the paper's heart
///   grid/     GCell grid, Lee/A*/Dijkstra maze search, congestion-aware
///             multi-net global routing with rip-up-and-reroute
///   sta/      static timing analysis -> sink criticalities for CSORG
///   expt/     seeded nets, winners/all-cases aggregation, paper tables
///   viz/      SVG rendering of routings
///   io/       .net/.route text formats, CLI option parsing

#include "core/exhaustive.h"
#include "core/heuristics.h"
#include "core/horg.h"
#include "core/ldrg.h"
#include "core/ldrg_screened.h"
#include "core/solver.h"
#include "core/wire_sizing.h"
#include "delay/bounds.h"
#include "delay/elmore.h"
#include "delay/evaluator.h"
#include "delay/moments.h"
#include "delay/screener.h"
#include "delay/two_pole.h"
#include "expt/comparison.h"
#include "expt/net_generator.h"
#include "expt/protocol.h"
#include "expt/statistics.h"
#include "flow/timing_flow.h"
#include "geom/bbox.h"
#include "geom/hanan.h"
#include "geom/point.h"
#include "geom/segments.h"
#include "graph/bridges.h"
#include "graph/embedding.h"
#include "graph/metrics.h"
#include "graph/mst.h"
#include "graph/net.h"
#include "graph/paths.h"
#include "graph/routing_graph.h"
#include "grid/global_router.h"
#include "grid/grid.h"
#include "grid/layered.h"
#include "grid/net_router.h"
#include "grid/search.h"
#include "io/cli.h"
#include "io/net_io.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse.h"
#include "linalg/sparse_cholesky.h"
#include "linalg/vector_ops.h"
#include "route/brbc.h"
#include "route/constructions.h"
#include "route/local_search.h"
#include "route/ert.h"
#include "sim/mna.h"
#include "sim/transient.h"
#include "sim/waveform_io.h"
#include "spice/deck_io.h"
#include "spice/graph_netlist.h"
#include "spice/netlist.h"
#include "spice/spef.h"
#include "spice/technology.h"
#include "spice/units.h"
#include "sta/timing_graph.h"
#include "steiner/iterated_one_steiner.h"
#include "viz/svg.h"
