#pragma once

/// \mainpage ntr -- Non-Tree Routing
///
/// Umbrella header for the Non-Tree Routing library (McCoy & Robins,
/// DATE 1994 reproduction). Include this for everything, or pick the
/// per-module headers to keep compile times down:
///
///   geom/     points, Manhattan metric, Hanan grid, rectilinear segments
///   graph/    routing graphs with cycles, MST, paths, bridges, embedding
///   linalg/   dense LU/Cholesky, CSR + conjugate gradient
///   spice/    Table-1 technology, linear netlists, deck I/O, graph->RC
///   sim/      MNA, DC/moments, transient engine (the SPICE substitute)
///   delay/    Elmore (tree + graph), D2M, bounds, Sherman-Morrison
///             screener, pluggable DelayEvaluator
///   steiner/  Iterated 1-Steiner
///   route/    star/SPT, Prim-Dijkstra, BRBC, ERT/SERT
///   core/     LDRG, SLDRG, H1-H3, screened LDRG, exhaustive ORG,
///             wire sizing (WSORG), solve() facade  -- the paper's heart
///   grid/     GCell grid, Lee/A*/Dijkstra maze search, congestion-aware
///             multi-net global routing with rip-up-and-reroute
///   sta/      static timing analysis -> sink criticalities for CSORG
///   expt/     seeded nets, winners/all-cases aggregation, paper tables
///   viz/      SVG rendering of routings
///   io/       .net/.route text formats, CLI option parsing

#include "core/exhaustive.h"  // IWYU pragma: export
#include "core/heuristics.h"  // IWYU pragma: export
#include "core/horg.h"  // IWYU pragma: export
#include "core/ldrg.h"  // IWYU pragma: export
#include "core/ldrg_screened.h"  // IWYU pragma: export
#include "core/solver.h"  // IWYU pragma: export
#include "core/wire_sizing.h"  // IWYU pragma: export
#include "delay/bounds.h"  // IWYU pragma: export
#include "delay/elmore.h"  // IWYU pragma: export
#include "delay/evaluator.h"  // IWYU pragma: export
#include "delay/moments.h"  // IWYU pragma: export
#include "delay/screener.h"  // IWYU pragma: export
#include "delay/two_pole.h"  // IWYU pragma: export
#include "expt/comparison.h"  // IWYU pragma: export
#include "expt/net_generator.h"  // IWYU pragma: export
#include "expt/protocol.h"  // IWYU pragma: export
#include "expt/statistics.h"  // IWYU pragma: export
#include "flow/timing_flow.h"  // IWYU pragma: export
#include "geom/bbox.h"  // IWYU pragma: export
#include "geom/hanan.h"  // IWYU pragma: export
#include "geom/point.h"  // IWYU pragma: export
#include "geom/segments.h"  // IWYU pragma: export
#include "graph/bridges.h"  // IWYU pragma: export
#include "graph/embedding.h"  // IWYU pragma: export
#include "graph/metrics.h"  // IWYU pragma: export
#include "graph/mst.h"  // IWYU pragma: export
#include "graph/net.h"  // IWYU pragma: export
#include "graph/paths.h"  // IWYU pragma: export
#include "graph/routing_graph.h"  // IWYU pragma: export
#include "grid/global_router.h"  // IWYU pragma: export
#include "grid/grid.h"  // IWYU pragma: export
#include "grid/layered.h"  // IWYU pragma: export
#include "grid/net_router.h"  // IWYU pragma: export
#include "grid/search.h"  // IWYU pragma: export
#include "io/cli.h"  // IWYU pragma: export
#include "io/net_io.h"  // IWYU pragma: export
#include "linalg/dense_matrix.h"  // IWYU pragma: export
#include "linalg/sparse.h"  // IWYU pragma: export
#include "linalg/sparse_cholesky.h"  // IWYU pragma: export
#include "linalg/vector_ops.h"  // IWYU pragma: export
#include "route/brbc.h"  // IWYU pragma: export
#include "route/constructions.h"  // IWYU pragma: export
#include "route/local_search.h"  // IWYU pragma: export
#include "route/ert.h"  // IWYU pragma: export
#include "sim/mna.h"  // IWYU pragma: export
#include "sim/transient.h"  // IWYU pragma: export
#include "sim/waveform_io.h"  // IWYU pragma: export
#include "spice/deck_io.h"  // IWYU pragma: export
#include "spice/graph_netlist.h"  // IWYU pragma: export
#include "spice/netlist.h"  // IWYU pragma: export
#include "spice/spef.h"  // IWYU pragma: export
#include "spice/technology.h"  // IWYU pragma: export
#include "spice/units.h"  // IWYU pragma: export
#include "sta/timing_graph.h"  // IWYU pragma: export
#include "steiner/iterated_one_steiner.h"  // IWYU pragma: export
#include "viz/svg.h"  // IWYU pragma: export
