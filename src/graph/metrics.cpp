#include "graph/metrics.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "geom/point.h"
#include "graph/bridges.h"
#include "graph/embedding.h"
#include "graph/paths.h"

namespace ntr::graph {

RoutingMetrics compute_metrics(const RoutingGraph& g) {
  if (!g.is_connected())
    throw std::invalid_argument("compute_metrics: routing must be connected");

  RoutingMetrics m;
  m.nodes = g.node_count();
  m.edges = g.edge_count();
  m.cycles = g.cycle_count();
  m.redundant_edges = redundant_edge_count(g);
  m.wirelength_um = g.total_wirelength();
  m.metal_um = metal_length(g);

  const ShortestPaths sp = shortest_paths(g, g.source());
  const geom::Point source_pos = g.node(g.source()).pos;
  double detour_sum = 0.0;
  for (NodeId n = 0; n < g.node_count(); ++n) {
    m.max_degree = std::max(m.max_degree, static_cast<double>(g.degree(n)));
    const GraphNode& node = g.node(n);
    if (node.kind == NodeKind::kSteiner) ++m.steiner_nodes;
    if (node.kind != NodeKind::kSink) continue;
    ++m.sinks;
    const double direct = geom::manhattan_distance(source_pos, node.pos);
    m.radius_um = std::max(m.radius_um, sp.distance[n]);
    m.max_direct_um = std::max(m.max_direct_um, direct);
    if (direct > 0.0) detour_sum += sp.distance[n] / direct;
  }
  if (m.sinks > 0) m.mean_detour = detour_sum / static_cast<double>(m.sinks);
  if (m.max_direct_um > 0.0) m.radius_ratio = m.radius_um / m.max_direct_um;
  return m;
}

std::ostream& operator<<(std::ostream& os, const RoutingMetrics& m) {
  return os << m.nodes << " nodes (" << m.sinks << " sinks, " << m.steiner_nodes
            << " steiner), " << m.edges << " edges, " << m.cycles << " cycles ("
            << m.redundant_edges << " redundant), wl " << m.wirelength_um
            << " um (metal " << m.metal_um << "), radius " << m.radius_um
            << " um (ratio " << m.radius_ratio << ", mean detour " << m.mean_detour
            << ")";
}

}  // namespace ntr::graph
