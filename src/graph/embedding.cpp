#include "graph/embedding.h"

namespace ntr::graph {

std::vector<geom::Segment> embed_routing(const RoutingGraph& g) {
  std::vector<geom::Segment> segments;
  segments.reserve(2 * g.edge_count());
  for (const GraphEdge& e : g.edges()) {
    for (const geom::Segment& s : geom::l_route(g.node(e.u).pos, g.node(e.v).pos))
      segments.push_back(s);
  }
  return segments;
}

double metal_length(const RoutingGraph& g) {
  return geom::union_length(embed_routing(g));
}

double overlap_length(const RoutingGraph& g) {
  return g.total_wirelength() - metal_length(g);
}

}  // namespace ntr::graph
