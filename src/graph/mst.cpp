#include "graph/mst.h"

#include <algorithm>
#include <limits>

#include "graph/union_find.h"

namespace ntr::graph {

std::vector<IndexEdge> prim_mst(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  std::vector<IndexEdge> result;
  if (n < 2) return result;
  result.reserve(n - 1);

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best_dist(n, kInf);
  std::vector<std::size_t> best_parent(n, 0);
  std::vector<bool> in_tree(n, false);

  // Grow from point 0 (the source, when called on net pins).
  in_tree[0] = true;
  for (std::size_t j = 1; j < n; ++j) {
    best_dist[j] = geom::manhattan_distance(points[0], points[j]);
  }

  for (std::size_t step = 1; step < n; ++step) {
    std::size_t pick = n;
    double pick_dist = kInf;
    for (std::size_t j = 0; j < n; ++j) {
      if (!in_tree[j] && best_dist[j] < pick_dist) {
        pick = j;
        pick_dist = best_dist[j];
      }
    }
    in_tree[pick] = true;
    result.emplace_back(best_parent[pick], pick);
    for (std::size_t j = 0; j < n; ++j) {
      if (in_tree[j]) continue;
      const double d = geom::manhattan_distance(points[pick], points[j]);
      if (d < best_dist[j]) {
        best_dist[j] = d;
        best_parent[j] = pick;
      }
    }
  }
  return result;
}

std::vector<IndexEdge> kruskal_mst(std::span<const geom::Point> points) {
  const std::size_t n = points.size();
  std::vector<IndexEdge> result;
  if (n < 2) return result;

  struct WeightedEdge {
    double w;
    std::size_t u, v;
  };
  std::vector<WeightedEdge> all;
  all.reserve(n * (n - 1) / 2);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      all.push_back({geom::manhattan_distance(points[i], points[j]), i, j});
  std::sort(all.begin(), all.end(), [](const WeightedEdge& a, const WeightedEdge& b) {
    if (a.w != b.w) return a.w < b.w;
    if (a.u != b.u) return a.u < b.u;
    return a.v < b.v;
  });

  UnionFind uf(n);
  result.reserve(n - 1);
  for (const WeightedEdge& e : all) {
    if (uf.unite(e.u, e.v)) {
      result.emplace_back(e.u, e.v);
      if (result.size() == n - 1) break;
    }
  }
  return result;
}

double edges_cost(std::span<const geom::Point> points, std::span<const IndexEdge> edges) {
  double sum = 0.0;
  for (const auto& [u, v] : edges) sum += geom::manhattan_distance(points[u], points[v]);
  return sum;
}

}  // namespace ntr::graph
