#pragma once

#include <cstddef>
#include <numeric>
#include <vector>

namespace ntr::graph {

/// Disjoint-set union with path compression and union by rank.
/// Used by Kruskal's MST and by connectivity checks.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), rank_(n, 0), components_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Merges the sets containing a and b; returns false if already merged.
  bool unite(std::size_t a, std::size_t b) {
    std::size_t ra = find(a);
    std::size_t rb = find(b);
    if (ra == rb) return false;
    if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
    parent_[rb] = ra;
    if (rank_[ra] == rank_[rb]) ++rank_[ra];
    --components_;
    return true;
  }

  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
  [[nodiscard]] std::size_t component_count() const { return components_; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<unsigned> rank_;
  std::size_t components_;
};

}  // namespace ntr::graph
