#include "graph/bridges.h"

#include <algorithm>

namespace ntr::graph {

namespace {

/// Iterative Tarjan bridge-finding (low-link) to keep deep trees from
/// overflowing the call stack.
struct BridgeState {
  const RoutingGraph& g;
  std::vector<std::size_t> disc;   // discovery index, npos = unvisited
  std::vector<std::size_t> low;    // low-link
  std::vector<EdgeId> bridges;
  std::size_t timer = 0;

  static constexpr std::size_t kUnvisited = static_cast<std::size_t>(-1);

  explicit BridgeState(const RoutingGraph& graph)
      : g(graph),
        disc(graph.node_count(), kUnvisited),
        low(graph.node_count(), kUnvisited) {}

  void run(NodeId root) {
    struct Frame {
      NodeId node;
      EdgeId in_edge;       // edge used to enter `node` (kInvalidEdge at root)
      std::size_t next_idx; // next incident edge index to explore
    };
    std::vector<Frame> stack;
    disc[root] = low[root] = timer++;
    stack.push_back({root, kInvalidEdge, 0});

    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto incident = g.incident_edges(f.node);
      if (f.next_idx < incident.size()) {
        const EdgeId e = incident[f.next_idx++];
        if (e == f.in_edge) continue;  // do not immediately reuse the entry edge
        const NodeId to = g.other_endpoint(e, f.node);
        if (disc[to] == kUnvisited) {
          disc[to] = low[to] = timer++;
          stack.push_back({to, e, 0});
        } else {
          low[f.node] = std::min(low[f.node], disc[to]);
        }
      } else {
        const Frame done = f;
        stack.pop_back();
        if (!stack.empty()) {
          Frame& parent = stack.back();
          low[parent.node] = std::min(low[parent.node], low[done.node]);
          if (low[done.node] > disc[parent.node]) bridges.push_back(done.in_edge);
        }
      }
    }
  }
};

}  // namespace

std::vector<EdgeId> find_bridges(const RoutingGraph& g) {
  BridgeState state(g);
  for (NodeId n = 0; n < g.node_count(); ++n)
    if (state.disc[n] == BridgeState::kUnvisited) state.run(n);
  std::sort(state.bridges.begin(), state.bridges.end());
  return state.bridges;
}

std::vector<bool> redundant_edges(const RoutingGraph& g) {
  std::vector<bool> redundant(g.edge_count(), true);
  for (const EdgeId e : find_bridges(g)) redundant[e] = false;
  return redundant;
}

std::size_t redundant_edge_count(const RoutingGraph& g) {
  return g.edge_count() - find_bridges(g).size();
}

}  // namespace ntr::graph
