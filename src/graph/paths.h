#pragma once

#include <vector>

#include "graph/routing_graph.h"

namespace ntr::graph {

/// Result of a single-source shortest-path computation over the wires of a
/// routing graph (lengths in micrometers of routed wire, not straight-line
/// distance).
struct ShortestPaths {
  std::vector<double> distance;   ///< distance[n], +inf if unreachable
  std::vector<NodeId> parent;     ///< parent[n] on a shortest path tree, kInvalidNode at root
  std::vector<EdgeId> parent_edge;///< edge used to reach n, kInvalidEdge at root
};

/// Dijkstra over the graph's edges, weighted by edge length.
ShortestPaths shortest_paths(const RoutingGraph& g, NodeId source);

/// Orientation of a *tree* routing graph as a rooted tree: parent[] and
/// parent_edge[] via BFS from `root`. Throws std::invalid_argument if the
/// graph is not a tree (the orientation would not be well defined).
struct RootedTree {
  NodeId root = 0;
  std::vector<NodeId> parent;        ///< kInvalidNode at the root
  std::vector<EdgeId> parent_edge;   ///< kInvalidEdge at the root
  std::vector<NodeId> preorder;      ///< root-first traversal order
  [[nodiscard]] std::size_t size() const { return parent.size(); }
};

RootedTree root_tree(const RoutingGraph& g, NodeId root);

/// Wire pathlength from the root to every node of a rooted tree.
std::vector<double> tree_path_lengths(const RoutingGraph& g, const RootedTree& tree);

/// Nodes on the tree path from the root to `target`, inclusive of both ends.
std::vector<NodeId> tree_path(const RootedTree& tree, NodeId target);

/// Maximum over sinks of the source-to-sink pathlength (the routing radius).
double routing_radius(const RoutingGraph& g);

}  // namespace ntr::graph
