#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "geom/point.h"

namespace ntr::graph {

/// An undirected edge over point indices.
using IndexEdge = std::pair<std::size_t, std::size_t>;

/// Prim's algorithm on the complete Manhattan-distance graph of `points`.
/// O(n^2) time, which is optimal for dense/complete graphs. Returns n-1
/// edges (empty for n < 2). Ties are broken toward the lower-index parent,
/// so the result is deterministic.
std::vector<IndexEdge> prim_mst(std::span<const geom::Point> points);

/// Kruskal's algorithm on the complete Manhattan-distance graph. O(n^2 log n).
/// Provided as an independent implementation for cross-validation; the edge
/// *set* may differ from Prim's under ties but the total cost is identical.
std::vector<IndexEdge> kruskal_mst(std::span<const geom::Point> points);

/// Total Manhattan length of an edge list over `points`.
double edges_cost(std::span<const geom::Point> points, std::span<const IndexEdge> edges);

}  // namespace ntr::graph
