#pragma once

#include <vector>

#include "geom/segments.h"
#include "graph/routing_graph.h"

namespace ntr::graph {

/// Embeds every edge of the routing as an L-shaped rectilinear route
/// (horizontal leg first). The embedding realizes exactly the Manhattan
/// edge lengths the cost model charges.
std::vector<geom::Segment> embed_routing(const RoutingGraph& g);

/// Physical metal length of the embedded routing, with track overlaps
/// merged (geom::union_length over the embedding). Always <= the
/// edge-length sum total_wirelength(); the gap measures how much wire the
/// L-embedding shares between edges -- including the parallel runs the
/// paper's Section 5.2 proposes to merge into wider wires.
double metal_length(const RoutingGraph& g);

/// total_wirelength(g) - metal_length(g): the double-counted overlap.
double overlap_length(const RoutingGraph& g);

}  // namespace ntr::graph
