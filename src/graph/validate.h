#pragma once

#include <cmath>
#include <cstddef>
#include <set>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "check/validation.h"
#include "geom/point.h"
#include "graph/routing_graph.h"
#include "graph/union_find.h"

namespace ntr::graph {

/// Which RoutingGraph invariants to enforce beyond the structural core
/// (in-range endpoints, no self-loops, no parallel edges, Manhattan edge
/// lengths, positive widths, consistent adjacency).
struct GraphValidateOptions {
  /// Node 0 must exist, be NodeKind::kSource, and be the only source.
  bool require_source = false;
  /// Every node must be reachable from node 0 (the paper's graphs are
  /// single-component by definition; intermediate construction states are
  /// not, so this defaults off).
  bool require_connected = false;
  /// Absolute tolerance (um) on |edge.length - manhattan(u, v)|.
  double length_tolerance_um = 1e-9;
};

/// Validates a raw node/edge set. Exposed separately from the
/// RoutingGraph overload so tests can feed deliberately corrupted edge
/// lists that the RoutingGraph mutation API itself refuses to build.
inline check::ValidationReport validate_graph(std::span<const GraphNode> nodes,
                                       std::span<const GraphEdge> edges,
                                       const GraphValidateOptions& options = {}) {
  check::ValidationReport report;
  const std::size_t n = nodes.size();

  std::set<std::pair<NodeId, NodeId>> seen;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const GraphEdge& edge = edges[e];
    const std::string tag = "edge " + std::to_string(e);
    if (edge.u >= n || edge.v >= n) {
      report.errors.push_back(tag + ": dangling endpoint (" + std::to_string(edge.u) +
                              ", " + std::to_string(edge.v) + ") with " +
                              std::to_string(n) + " nodes");
      continue;  // remaining checks dereference the endpoints
    }
    if (edge.u == edge.v) {
      report.errors.push_back(tag + ": self-loop at node " + std::to_string(edge.u));
      continue;
    }
    const auto key = std::minmax(edge.u, edge.v);
    if (!seen.insert(key).second) {
      report.errors.push_back(tag + ": parallel edge between " +
                              std::to_string(key.first) + " and " +
                              std::to_string(key.second));
    }
    const double want = geom::manhattan_distance(nodes[edge.u].pos, nodes[edge.v].pos);
    if (!(std::abs(edge.length - want) <= options.length_tolerance_um)) {
      report.errors.push_back(tag + ": length " + std::to_string(edge.length) +
                              " != Manhattan distance " + std::to_string(want));
    }
    if (!(edge.width > 0.0) || !std::isfinite(edge.width)) {
      report.errors.push_back(tag + ": non-positive width " +
                              std::to_string(edge.width));
    }
  }

  if (options.require_source) {
    if (n == 0) {
      report.errors.emplace_back("graph is empty but a source node is required");
    } else if (nodes[0].kind != NodeKind::kSource) {
      report.errors.emplace_back("node 0 is not the source");
    }
    for (std::size_t i = 1; i < n; ++i) {
      if (nodes[i].kind == NodeKind::kSource) {
        report.errors.push_back("node " + std::to_string(i) +
                                " is a second source node");
      }
    }
  }

  if (options.require_connected && n > 0) {
    UnionFind uf(n);
    for (const GraphEdge& edge : edges) {
      if (edge.u < n && edge.v < n) uf.unite(edge.u, edge.v);
    }
    if (uf.component_count() != 1) {
      report.errors.push_back("graph is disconnected (" +
                              std::to_string(uf.component_count()) +
                              " components)");
    }
  }
  return report;
}

/// Validates a RoutingGraph, additionally cross-checking the adjacency
/// index against the edge list (every incident edge id in range, actually
/// incident, listed exactly once per endpoint, and covering all edges).
inline check::ValidationReport validate_graph(const RoutingGraph& g,
                                       const GraphValidateOptions& options = {}) {
  check::ValidationReport report = validate_graph(g.nodes(), g.edges(), options);

  std::size_t incident_total = 0;
  for (NodeId node = 0; node < g.node_count(); ++node) {
    std::set<EdgeId> unique;
    for (const EdgeId e : g.incident_edges(node)) {
      ++incident_total;
      if (e >= g.edge_count()) {
        report.errors.push_back("adjacency of node " + std::to_string(node) +
                                ": edge id " + std::to_string(e) + " out of range");
        continue;
      }
      const GraphEdge& edge = g.edge(e);
      if (edge.u != node && edge.v != node) {
        report.errors.push_back("adjacency of node " + std::to_string(node) +
                                ": edge " + std::to_string(e) + " is not incident");
      }
      if (!unique.insert(e).second) {
        report.errors.push_back("adjacency of node " + std::to_string(node) +
                                ": edge " + std::to_string(e) + " listed twice");
      }
    }
  }
  if (incident_total != 2 * g.edge_count()) {
    report.errors.push_back("adjacency covers " + std::to_string(incident_total) +
                            " endpoints for " + std::to_string(g.edge_count()) +
                            " edges");
  }
  return report;
}

}  // namespace ntr::graph
