#pragma once

#include <iosfwd>

#include "graph/routing_graph.h"

namespace ntr::graph {

/// One routing's quality card: the geometric quantities every router
/// paper reports, computed uniformly so different constructions can be
/// tabulated side by side (delay is deliberately excluded -- that is the
/// delay evaluators' job and depends on the technology).
struct RoutingMetrics {
  std::size_t nodes = 0;
  std::size_t sinks = 0;
  std::size_t steiner_nodes = 0;
  std::size_t edges = 0;
  std::size_t cycles = 0;           ///< independent cycles (0 for trees)
  std::size_t redundant_edges = 0;  ///< edges on at least one cycle
  double wirelength_um = 0.0;       ///< sum of edge lengths (the paper's cost)
  double metal_um = 0.0;            ///< L-embedded, overlap-merged metal
  double radius_um = 0.0;           ///< max source-sink wire pathlength
  double max_direct_um = 0.0;       ///< max source-sink Manhattan distance
  /// radius / max_direct: 1.0 = shortest-path-tree-like, larger = detoury.
  double radius_ratio = 0.0;
  /// mean over sinks of pathlength / direct distance (average detour).
  double mean_detour = 0.0;
  double max_degree = 0.0;
};

/// Computes every metric in one pass (Dijkstra + bridge finding +
/// embedding). Requires a connected routing.
RoutingMetrics compute_metrics(const RoutingGraph& g);

/// One-line human-readable rendering (used by the CLI's --report).
std::ostream& operator<<(std::ostream& os, const RoutingMetrics& m);

}  // namespace ntr::graph
