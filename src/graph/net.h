#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "geom/point.h"

namespace ntr::graph {

/// A signal net N = {n_0, n_1, ..., n_k}: a fixed set of pins in the
/// Manhattan plane. By convention pins[0] is the source n_0 (where the
/// signal originates); all other pins are sinks.
struct Net {
  std::vector<geom::Point> pins;

  [[nodiscard]] std::size_t size() const { return pins.size(); }
  [[nodiscard]] std::size_t sink_count() const {
    return pins.empty() ? 0 : pins.size() - 1;
  }
  [[nodiscard]] const geom::Point& source() const { return pins.at(0); }

  /// Throws std::invalid_argument when the net cannot be routed:
  /// fewer than two pins, or duplicate pin locations (which would create
  /// zero-length edges and degenerate RC segments).
  void validate() const {
    if (pins.size() < 2)
      throw std::invalid_argument("Net requires a source and at least one sink");
    for (std::size_t i = 0; i < pins.size(); ++i)
      for (std::size_t j = i + 1; j < pins.size(); ++j)
        if (pins[i] == pins[j])
          throw std::invalid_argument("Net contains duplicate pin locations");
  }
};

}  // namespace ntr::graph
