#pragma once

#include <vector>

#include "graph/routing_graph.h"

namespace ntr::graph {

/// Edge ids of all bridges: edges whose removal disconnects the graph.
/// In a routing tree every edge is a bridge; each LDRG-added wire turns
/// every edge of the cycle it closes into a non-bridge. Non-bridge wires
/// are exactly the wires with a redundant second path -- the structural
/// signature of non-tree routing (and, as the paper's Section 5.2 notes,
/// the wires one may merge/size). Tarjan's algorithm, O(V + E).
std::vector<EdgeId> find_bridges(const RoutingGraph& g);

/// Per-edge redundancy flags: redundant[e] == true iff e is NOT a bridge,
/// i.e. e lies on a cycle and the signal has an alternative path.
std::vector<bool> redundant_edges(const RoutingGraph& g);

/// Count of edges lying on at least one cycle.
std::size_t redundant_edge_count(const RoutingGraph& g);

}  // namespace ntr::graph
