#include "graph/paths.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace ntr::graph {

ShortestPaths shortest_paths(const RoutingGraph& g, NodeId source) {
  const std::size_t n = g.node_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  ShortestPaths sp;
  sp.distance.assign(n, kInf);
  sp.parent.assign(n, kInvalidNode);
  sp.parent_edge.assign(n, kInvalidEdge);
  if (source >= n) throw std::out_of_range("shortest_paths: source out of range");

  using Entry = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  sp.distance[source] = 0.0;
  heap.emplace(0.0, source);

  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > sp.distance[u]) continue;  // stale entry
    for (const EdgeId e : g.incident_edges(u)) {
      const NodeId v = g.other_endpoint(e, u);
      const double nd = dist + g.edge(e).length;
      if (nd < sp.distance[v]) {
        sp.distance[v] = nd;
        sp.parent[v] = u;
        sp.parent_edge[v] = e;
        heap.emplace(nd, v);
      }
    }
  }
  return sp;
}

RootedTree root_tree(const RoutingGraph& g, NodeId root) {
  if (!g.is_tree())
    throw std::invalid_argument("root_tree: routing graph is not a tree");
  const std::size_t n = g.node_count();
  RootedTree t;
  t.root = root;
  t.parent.assign(n, kInvalidNode);
  t.parent_edge.assign(n, kInvalidEdge);
  t.preorder.reserve(n);

  std::vector<bool> seen(n, false);
  std::vector<NodeId> stack{root};
  stack.reserve(n);
  seen[root] = true;
  while (!stack.empty()) {
    const NodeId u = stack.back();
    stack.pop_back();
    t.preorder.push_back(u);
    for (const EdgeId e : g.incident_edges(u)) {
      const NodeId v = g.other_endpoint(e, u);
      if (!seen[v]) {
        seen[v] = true;
        t.parent[v] = u;
        t.parent_edge[v] = e;
        stack.push_back(v);
      }
    }
  }
  if (t.preorder.size() != n)
    throw std::invalid_argument("root_tree: tree is not connected");
  return t;
}

std::vector<double> tree_path_lengths(const RoutingGraph& g, const RootedTree& tree) {
  std::vector<double> len(tree.size(), 0.0);
  for (const NodeId u : tree.preorder) {
    if (tree.parent[u] == kInvalidNode) continue;
    len[u] = len[tree.parent[u]] + g.edge(tree.parent_edge[u]).length;
  }
  return len;
}

std::vector<NodeId> tree_path(const RootedTree& tree, NodeId target) {
  std::vector<NodeId> path;
  for (NodeId u = target; u != kInvalidNode; u = tree.parent[u]) path.push_back(u);
  std::reverse(path.begin(), path.end());
  if (path.empty() || path.front() != tree.root)
    throw std::invalid_argument("tree_path: target not reachable from root");
  return path;
}

double routing_radius(const RoutingGraph& g) {
  const ShortestPaths sp = shortest_paths(g, g.source());
  double radius = 0.0;
  for (const NodeId s : g.sinks()) radius = std::max(radius, sp.distance[s]);
  return radius;
}

}  // namespace ntr::graph
