#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "geom/point.h"
#include "graph/net.h"

namespace ntr::graph {

using NodeId = std::size_t;
using EdgeId = std::size_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

enum class NodeKind {
  kSource,   ///< n_0, where the signal originates (driven node)
  kSink,     ///< a load pin with sink capacitance
  kSteiner,  ///< a via/junction introduced by a Steiner construction
};

struct GraphNode {
  geom::Point pos;
  NodeKind kind = NodeKind::kSink;
};

/// An undirected routing wire between two nodes. `length` is the Manhattan
/// distance between the endpoints (the paper's edge cost d_ij). `width` is
/// a multiplier on the nominal wire width, used by the WSORG wire-sizing
/// extension (Section 5.2): resistance scales as 1/width, area capacitance
/// as width.
struct GraphEdge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;
  double length = 0.0;
  double width = 1.0;
};

/// A routing graph G = (N, E): nodes at fixed plane locations connected by
/// rectilinear wires. Unlike classical routing *trees*, E may contain
/// cycles -- this is the paper's central generalization. The node at index
/// 0 is always the source.
///
/// Invariants: no self-loops, no parallel edges (add_edge on an existing
/// pair returns the existing id), edge lengths equal the Manhattan
/// distance of their endpoints.
class RoutingGraph {
 public:
  RoutingGraph() = default;

  /// Creates a graph with one node per net pin (pins[0] as the source) and
  /// no edges.
  explicit RoutingGraph(const Net& net);

  // ---- construction ----
  NodeId add_node(const geom::Point& pos, NodeKind kind);

  /// Adds the undirected edge {u,v}. Throws on self-loop or out-of-range
  /// ids. If the edge already exists, returns its existing id.
  EdgeId add_edge(NodeId u, NodeId v);

  /// Removes an edge. Edge ids above `e` shift down by one (vector
  /// semantics); callers that cache edge ids must refresh them.
  void remove_edge(EdgeId e);

  /// Splits edge e at point p (which should lie on a shortest rectilinear
  /// route between the endpoints): removes e, adds a Steiner node at p and
  /// two replacement edges. Returns the new node id.
  NodeId split_edge(EdgeId e, const geom::Point& p);

  void set_edge_width(EdgeId e, double width);

  // ---- queries ----
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] std::size_t edge_count() const { return edges_.size(); }
  [[nodiscard]] const GraphNode& node(NodeId n) const { return nodes_.at(n); }
  [[nodiscard]] const GraphEdge& edge(EdgeId e) const { return edges_.at(e); }
  [[nodiscard]] std::span<const GraphNode> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const GraphEdge> edges() const { return edges_; }

  [[nodiscard]] NodeId source() const { return 0; }

  /// Ids of all sink nodes (kind == kSink), in increasing order.
  [[nodiscard]] std::vector<NodeId> sinks() const;

  /// Edge ids incident to node n.
  [[nodiscard]] std::span<const EdgeId> incident_edges(NodeId n) const {
    return adjacency_.at(n);
  }

  /// The endpoint of edge e that is not n. Precondition: n is an endpoint.
  [[nodiscard]] NodeId other_endpoint(EdgeId e, NodeId n) const;

  [[nodiscard]] std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v).has_value();
  }

  [[nodiscard]] std::size_t degree(NodeId n) const { return adjacency_.at(n).size(); }

  /// Sum of edge costs (Manhattan wirelength), the paper's cost(G).
  /// Edge widths do not change cost here; sized cost is reported separately
  /// by the WSORG extension as sum(length * width).
  [[nodiscard]] double total_wirelength() const;

  /// Sum of length*width over edges: routing area in the wire-sizing regime.
  [[nodiscard]] double total_wire_area() const;

  [[nodiscard]] bool is_connected() const;

  /// True iff connected and acyclic (a routing tree in the classical sense).
  [[nodiscard]] bool is_tree() const;

  /// Number of independent cycles: |E| - |V| + components.
  [[nodiscard]] std::size_t cycle_count() const;

 private:
  std::vector<GraphNode> nodes_;
  std::vector<GraphEdge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;

  void rebuild_adjacency();
};

/// Builds the MST routing over a net: RoutingGraph(net) plus Prim MST edges.
RoutingGraph mst_routing(const Net& net);

}  // namespace ntr::graph
