#include "graph/routing_graph.h"

#include <stdexcept>

#include "check/contracts.h"
#include "graph/validate.h"
#include "graph/mst.h"
#include "graph/union_find.h"

namespace ntr::graph {

RoutingGraph::RoutingGraph(const Net& net) {
  net.validate();
  nodes_.reserve(net.pins.size());
  for (std::size_t i = 0; i < net.pins.size(); ++i) {
    nodes_.push_back(GraphNode{net.pins[i], i == 0 ? NodeKind::kSource : NodeKind::kSink});
  }
  adjacency_.resize(nodes_.size());
}

NodeId RoutingGraph::add_node(const geom::Point& pos, NodeKind kind) {
  if (kind == NodeKind::kSource && !nodes_.empty())
    throw std::invalid_argument("RoutingGraph already has a source node");
  nodes_.push_back(GraphNode{pos, kind});
  adjacency_.emplace_back();
  NTR_ASSERT(adjacency_.size() == nodes_.size());
  return nodes_.size() - 1;
}

EdgeId RoutingGraph::add_edge(NodeId u, NodeId v) {
  if (u >= nodes_.size() || v >= nodes_.size())
    throw std::out_of_range("RoutingGraph::add_edge: node id out of range");
  if (u == v) throw std::invalid_argument("RoutingGraph::add_edge: self-loop");
  if (auto existing = find_edge(u, v)) return *existing;
  const double len = geom::manhattan_distance(nodes_[u].pos, nodes_[v].pos);
  // ntr-alloc-in-hot-path(one edge per accepted LDRG round; amortized growth)
  edges_.push_back(GraphEdge{u, v, len, 1.0});
  const EdgeId id = edges_.size() - 1;
  adjacency_[u].push_back(id);  // ntr-alloc-in-hot-path(tiny degree list)
  adjacency_[v].push_back(id);  // ntr-alloc-in-hot-path(tiny degree list)
  NTR_DCHECK(check::require(validate_graph(*this),
                            "RoutingGraph::add_edge postcondition"));
  return id;
}

void RoutingGraph::remove_edge(EdgeId e) {
  if (e >= edges_.size()) throw std::out_of_range("RoutingGraph::remove_edge");
  edges_.erase(edges_.begin() + static_cast<std::ptrdiff_t>(e));
  rebuild_adjacency();
  NTR_DCHECK(check::require(validate_graph(*this),
                            "RoutingGraph::remove_edge postcondition"));
}

NodeId RoutingGraph::split_edge(EdgeId e, const geom::Point& p) {
  if (e >= edges_.size()) throw std::out_of_range("RoutingGraph::split_edge");
  const GraphEdge split = edges_[e];
  const double width = split.width;
  remove_edge(e);
  const NodeId mid = add_node(p, NodeKind::kSteiner);
  const EdgeId a = add_edge(split.u, mid);
  const EdgeId b = add_edge(mid, split.v);
  edges_[a].width = width;
  edges_[b].width = width;
  // A split point off every shortest rectilinear (u,v) route lengthens
  // the wire; the structural invariants still hold, but the caller has
  // almost certainly computed the wrong point.
  NTR_DCHECK_MSG(geom::within_bounding_box(nodes_[split.u].pos, nodes_[split.v].pos, p),
                 "split point lies outside the edge's bounding box");
  return mid;
}

void RoutingGraph::set_edge_width(EdgeId e, double width) {
  if (e >= edges_.size()) throw std::out_of_range("RoutingGraph::set_edge_width");
  if (width <= 0.0) throw std::invalid_argument("edge width must be positive");
  edges_[e].width = width;
}

std::vector<NodeId> RoutingGraph::sinks() const {
  std::vector<NodeId> out;
  out.reserve(nodes_.size());
  for (NodeId n = 0; n < nodes_.size(); ++n)
    if (nodes_[n].kind == NodeKind::kSink) out.push_back(n);
  return out;
}

NodeId RoutingGraph::other_endpoint(EdgeId e, NodeId n) const {
  const GraphEdge& ed = edges_.at(e);
  if (ed.u == n) return ed.v;
  if (ed.v == n) return ed.u;
  throw std::invalid_argument("other_endpoint: node is not an endpoint of edge");
}

std::optional<EdgeId> RoutingGraph::find_edge(NodeId u, NodeId v) const {
  if (u >= nodes_.size() || v >= nodes_.size()) return std::nullopt;
  // Scan the smaller adjacency list.
  const NodeId probe = adjacency_[u].size() <= adjacency_[v].size() ? u : v;
  const NodeId target = probe == u ? v : u;
  for (const EdgeId e : adjacency_[probe])
    if (other_endpoint(e, probe) == target) return e;
  return std::nullopt;
}

double RoutingGraph::total_wirelength() const {
  double sum = 0.0;
  for (const GraphEdge& e : edges_) sum += e.length;
  return sum;
}

double RoutingGraph::total_wire_area() const {
  double sum = 0.0;
  for (const GraphEdge& e : edges_) sum += e.length * e.width;
  return sum;
}

bool RoutingGraph::is_connected() const {
  if (nodes_.empty()) return true;
  UnionFind uf(nodes_.size());
  for (const GraphEdge& e : edges_) uf.unite(e.u, e.v);
  return uf.component_count() == 1;
}

bool RoutingGraph::is_tree() const {
  return is_connected() && edges_.size() + 1 == nodes_.size();
}

std::size_t RoutingGraph::cycle_count() const {
  UnionFind uf(nodes_.size());
  for (const GraphEdge& e : edges_) uf.unite(e.u, e.v);
  return edges_.size() + uf.component_count() - nodes_.size();
}

void RoutingGraph::rebuild_adjacency() {
  adjacency_.assign(nodes_.size(), {});
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    adjacency_[edges_[e].u].push_back(e);  // ntr-alloc-in-hot-path(tiny degree list)
    adjacency_[edges_[e].v].push_back(e);  // ntr-alloc-in-hot-path(tiny degree list)
  }
}

RoutingGraph mst_routing(const Net& net) {
  RoutingGraph g(net);
  for (const auto& [u, v] : prim_mst(net.pins)) g.add_edge(u, v);
  return g;
}

}  // namespace ntr::graph
