#include "core/ldrg.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>

#include "check/contracts.h"
#include "core/annotations.h"
#include "check/faultinject.h"
#include "graph/validate.h"
#include "runtime/status.h"

namespace ntr::core {

namespace {

/// In-lane stop-poll stride: every 16 candidates each lane re-checks the
/// shared stop flag and the token. Candidate scoring dominates the cost
/// (an LU solve or an O(n) delta), so 16 bounds cancellation latency to a
/// few scores without measurable overhead.
constexpr std::size_t kLaneStopStride = 16;

double objective(const graph::RoutingGraph& g, const delay::DelayEvaluator& evaluator,
                 const std::vector<double>& criticality) {
  return criticality.empty() ? evaluator.max_delay(g)
                             : evaluator.weighted_delay(g, criticality);
}

double sink_objective(const std::vector<double>& sink_delays,
                      const std::vector<double>& criticality) {
  if (criticality.empty()) {
    double worst = 0.0;
    for (const double d : sink_delays) worst = std::max(worst, d);
    return worst;
  }
  if (criticality.size() != sink_delays.size())
    throw std::invalid_argument("ldrg: criticality size must match sink count");
  double sum = 0.0;
  for (std::size_t i = 0; i < sink_delays.size(); ++i)
    sum += criticality[i] * sink_delays[i];
  return sum;
}

struct Candidate {
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;
};

/// The winning candidate of one lane: its score and its index in the
/// shared enumeration order. Reduced across lanes by (score, index), which
/// reproduces the serial loop's "strict improvement, first tie wins"
/// semantics for any lane count.
struct LaneBest {
  double score = std::numeric_limits<double>::infinity();
  std::size_t index = std::numeric_limits<std::size_t>::max();
};

}  // namespace

// NTR_HOT: the per-round candidate scan is the paper's O(n^2) inner
// loop; everything this reaches must be allocation-disciplined.
NTR_HOT LdrgResult ldrg(const graph::RoutingGraph& initial,
                        const delay::DelayEvaluator& evaluator,
                        const LdrgOptions& options) {
  if (!initial.is_connected())
    throw std::invalid_argument("ldrg: initial routing must be connected");

  LdrgResult result;
  result.graph = initial;
  result.initial_objective = objective(result.graph, evaluator, options.criticality);
  result.initial_cost = result.graph.total_wirelength();
  result.final_objective = result.initial_objective;
  result.final_cost = result.initial_cost;

  const double cost_budget = options.max_cost_ratio * result.initial_cost;
  const bool weighted = !options.criticality.empty();

  const std::size_t lanes = options.parallel.resolved_threads();
  std::unique_ptr<ThreadPool> pool;
  if (lanes > 1) pool = std::make_unique<ThreadPool>(lanes);

  const bool stop_engaged = options.stop.engaged();
  while (result.steps.size() < options.max_added_edges) {
    // Round boundary: the natural resumption point -- result.graph holds a
    // complete, valid routing after every accepted edge, so unwinding here
    // loses at most one round of scan work.
    NTR_FAULT_POINT(kLdrgDeadline);
    if (stop_engaged) options.stop.throw_if_stopped("ldrg round");

    const double current = result.final_objective;
    const double accept_below =
        current * (1.0 - options.min_relative_improvement);

    // The paper's step 2: exists e_ij in N x N improving t(G)? Enumerate
    // every absent pair (pins and Steiner points alike) within the cost
    // budget; the enumeration order defines the tie-break index.
    NTR_FAULT_POINT(kLdrgAllocation);
    std::vector<Candidate> candidates;
    const std::size_t pair_bound = result.graph.node_count() *
                                   (result.graph.node_count() - 1) / 2;
    candidates.reserve(pair_bound);
    for (graph::NodeId u = 0; u < result.graph.node_count(); ++u) {
      for (graph::NodeId v = u + 1; v < result.graph.node_count(); ++v) {
        if (result.graph.has_edge(u, v)) continue;
        const double edge_len = geom::manhattan_distance(
            result.graph.node(u).pos, result.graph.node(v).pos);
        if (result.final_cost + edge_len > cost_budget) continue;
        candidates.push_back({u, v});
      }
    }
    if (candidates.empty()) break;

    // Incremental path: evaluators with a delta engine (Sherman-Morrison
    // Elmore) score a candidate in O(n) off the cached factorization of
    // the *current* graph. The cache is rebuilt here each round -- the
    // accepted edge of the previous round invalidated it.
    const std::unique_ptr<delay::CandidateScorer> scorer =
        evaluator.make_candidate_scorer(result.graph);

    // Lane-local scans with deterministic static chunking. Each lane
    // tracks its own branch-and-bound cutoff, seeded at the acceptance
    // threshold: a candidate whose delay provably exceeds the lane's best
    // can never become the winner, so its evaluation may stop early.
    std::vector<LaneBest> lane_best(lanes);
    // One lane observing a tripped token raises the shared flag; the other
    // lanes see it at their next stride check and break too, so the pool
    // joins promptly and ldrg can rethrow the trip as a typed error.
    std::atomic<bool> stop_hit{false};
    parallel_chunks(pool.get(), candidates.size(),
                    [&](std::size_t lane, std::size_t begin, std::size_t end) {
                      LaneBest best;
                      double bound = accept_below;
                      for (std::size_t i = begin; i < end; ++i) {
                        if (stop_engaged && (i - begin) % kLaneStopStride == 0) {
                          if (stop_hit.load(std::memory_order_relaxed) ||
                              options.stop.poll() != runtime::StatusCode::kOk) {
                            stop_hit.store(true, std::memory_order_relaxed);
                            break;
                          }
                        }
                        const Candidate& c = candidates[i];
                        double t;
                        if (scorer) {
                          t = sink_objective(
                              scorer->candidate_sink_delays(c.u, c.v),
                              options.criticality);
                        } else {
                          graph::RoutingGraph trial = result.graph;
                          trial.add_edge(c.u, c.v);
                          t = (!weighted && options.bounded_scoring)
                                  ? evaluator.bounded_max_delay(trial, bound)
                                  : objective(trial, evaluator,
                                              options.criticality);
                        }
                        if (t < bound) {
                          bound = t;
                          best = LaneBest{t, i};
                        }
                      }
                      lane_best[lane] = best;
                    });
    if (stop_hit.load(std::memory_order_relaxed))
      options.stop.throw_if_stopped("ldrg candidate scan");

    // Deterministic reduction: lowest score wins, ties go to the lowest
    // candidate index -- independent of lane count and scheduling.
    LaneBest best;
    for (const LaneBest& lb : lane_best) {
      if (lb.index == std::numeric_limits<std::size_t>::max()) continue;
      if (lb.score < best.score ||
          (lb.score == best.score && lb.index < best.index))
        best = lb;
    }
    if (best.index == std::numeric_limits<std::size_t>::max() ||
        !(best.score < accept_below))
      break;  // no candidate improves t(G)

    const Candidate winner = candidates[best.index];
    result.graph.add_edge(winner.u, winner.v);

    // Delta scores carry O(1e-12) relative error; re-measure the accepted
    // routing with the exact oracle so every reported objective is the
    // evaluator's own number. (Without a scorer the scan value *is* the
    // exact evaluator output for this graph, bit for bit.)
    double accepted = best.score;
    if (scorer) {
      accepted = objective(result.graph, evaluator, options.criticality);
      if (!(accepted < accept_below)) {
        // The delta promised an improvement the exact solve cannot
        // confirm (a sub-1e-12 margin): undo and stop.
        const auto e = result.graph.find_edge(winner.u, winner.v);
        NTR_CHECK(e.has_value());
        result.graph.remove_edge(*e);
        break;
      }
    }

    result.final_objective = accepted;
    result.final_cost = result.graph.total_wirelength();
    // ntr-alloc-in-hot-path(one step per accepted round; the trace IS the result)
    result.steps.push_back(
        LdrgStep{winner.u, winner.v, current, accepted, result.final_cost});
  }

  // Every accepted edge strictly improved the objective and stayed within
  // the wirelength budget, and edge insertion cannot disconnect a graph.
  NTR_CHECK(result.final_objective <= result.initial_objective);
  NTR_CHECK(result.final_cost <=
            std::max(result.initial_cost, cost_budget) * (1.0 + 1e-12));
  NTR_DCHECK(check::require(
      graph::validate_graph(result.graph, {.require_connected = true}),
      "ldrg postcondition"));
  return result;
}

}  // namespace ntr::core
