#include "core/ldrg.h"

#include <algorithm>
#include <stdexcept>

#include "check/contracts.h"
#include "check/validate_graph.h"

namespace ntr::core {

namespace {

double objective(const graph::RoutingGraph& g, const delay::DelayEvaluator& evaluator,
                 const std::vector<double>& criticality) {
  return criticality.empty() ? evaluator.max_delay(g)
                             : evaluator.weighted_delay(g, criticality);
}

}  // namespace

LdrgResult ldrg(const graph::RoutingGraph& initial,
                const delay::DelayEvaluator& evaluator, const LdrgOptions& options) {
  if (!initial.is_connected())
    throw std::invalid_argument("ldrg: initial routing must be connected");

  LdrgResult result;
  result.graph = initial;
  result.initial_objective = objective(result.graph, evaluator, options.criticality);
  result.initial_cost = result.graph.total_wirelength();
  result.final_objective = result.initial_objective;
  result.final_cost = result.initial_cost;

  const double cost_budget = options.max_cost_ratio * result.initial_cost;

  while (result.steps.size() < options.max_added_edges) {
    const double current = result.final_objective;
    const double accept_below =
        current * (1.0 - options.min_relative_improvement);

    double best_objective = accept_below;
    graph::NodeId best_u = graph::kInvalidNode;
    graph::NodeId best_v = graph::kInvalidNode;

    // The paper's step 2: exists e_ij in N x N improving t(G)? Try every
    // absent pair (pins and Steiner points alike) and keep the best.
    for (graph::NodeId u = 0; u < result.graph.node_count(); ++u) {
      for (graph::NodeId v = u + 1; v < result.graph.node_count(); ++v) {
        if (result.graph.has_edge(u, v)) continue;
        const double edge_len = geom::manhattan_distance(
            result.graph.node(u).pos, result.graph.node(v).pos);
        if (result.final_cost + edge_len > cost_budget) continue;
        graph::RoutingGraph trial = result.graph;
        trial.add_edge(u, v);
        const double t = objective(trial, evaluator, options.criticality);
        if (t < best_objective) {
          best_objective = t;
          best_u = u;
          best_v = v;
        }
      }
    }

    if (best_u == graph::kInvalidNode) break;  // no candidate improves t(G)

    result.graph.add_edge(best_u, best_v);
    result.final_objective = best_objective;
    result.final_cost = result.graph.total_wirelength();
    result.steps.push_back(
        LdrgStep{best_u, best_v, current, best_objective, result.final_cost});
  }

  // Every accepted edge strictly improved the objective and stayed within
  // the wirelength budget, and edge insertion cannot disconnect a graph.
  NTR_CHECK(result.final_objective <= result.initial_objective);
  NTR_CHECK(result.final_cost <=
            std::max(result.initial_cost, cost_budget) * (1.0 + 1e-12));
  NTR_DCHECK(check::require(
      check::validate_graph(result.graph, {.require_connected = true}),
      "ldrg postcondition"));
  return result;
}

}  // namespace ntr::core
