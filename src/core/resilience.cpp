#include "core/resilience.h"

#include <exception>
#include <sstream>
#include <utility>

#include "delay/evaluator.h"

namespace ntr::core {

namespace {

/// Minimal JSON string escaping (quotes, backslashes, control bytes) --
/// enough for status messages and net names.
void append_json_string(std::ostringstream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out << "\\u00" << kHex[(c >> 4) & 0xf] << kHex[c & 0xf];
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

const char* net_disposition_name(NetDisposition d) {
  switch (d) {
    case NetDisposition::kOk: return "ok";
    case NetDisposition::kDegraded: return "degraded";
    case NetDisposition::kQuarantined: return "quarantined";
  }
  return "unknown";
}

const char* on_error_name(OnError policy) {
  switch (policy) {
    case OnError::kFail: return "fail";
    case OnError::kDegrade: return "degrade";
    case OnError::kSkip: return "skip";
  }
  return "unknown";
}

std::optional<OnError> on_error_from_name(std::string_view name) {
  if (name == "fail") return OnError::kFail;
  if (name == "degrade") return OnError::kDegrade;
  if (name == "skip") return OnError::kSkip;
  return std::nullopt;
}

Strategy seed_strategy(Strategy s) {
  switch (s) {
    case Strategy::kSldrg: return Strategy::kSteinerTree;
    case Strategy::kErtLdrg: return Strategy::kErt;
    default: return Strategy::kMst;
  }
}

runtime::StatusOr<Solution> try_solve(const graph::Net& net, Strategy strategy,
                                      const delay::DelayEvaluator& evaluator,
                                      const SolverConfig& config) {
  try {
    return solve(net, strategy, evaluator, config);
  } catch (const std::exception& e) {
    return runtime::exception_to_status(e);
  } catch (...) {
    return runtime::Status(runtime::StatusCode::kInternal,
                           "try_solve: non-standard exception");
  }
}

GuardedSolution solve_resilient(const graph::Net& net, Strategy strategy,
                                const delay::DelayEvaluator& evaluator,
                                const SolverConfig& config,
                                const ResilienceOptions& resilience) {
  SolverConfig bounded = config;
  if (resilience.stop.engaged()) bounded.stop = resilience.stop;

  GuardedSolution out;

  // Rung 0: the requested configuration.
  runtime::StatusOr<Solution> primary = try_solve(net, strategy, evaluator, bounded);
  if (primary.ok()) {
    out.solution = std::move(primary).value();
    return out;  // disposition kOk, rung 0, ok status
  }
  const runtime::Status first = primary.status();
  out.outcome.status = first;

  // Malformed input cannot be rescued by a cheaper evaluator, and the
  // fail/skip policies forgo the ladder by definition.
  if (first.code() == runtime::StatusCode::kBadInput ||
      resilience.on_error != OnError::kDegrade) {
    out.outcome.disposition = NetDisposition::kQuarantined;
    return out;
  }

  // Rung 1: same strategy, graph-Elmore evaluator. Still deadline-bounded:
  // when the budget is already spent this fails in one entry poll and the
  // ladder moves on rather than burning more wall clock.
  const delay::GraphElmoreEvaluator elmore(bounded.tech);
  runtime::StatusOr<Solution> fallback =
      try_solve(net, strategy, elmore, bounded);
  if (fallback.ok()) {
    out.solution = std::move(fallback).value();
    out.outcome.disposition = NetDisposition::kDegraded;
    out.outcome.rung = 1;
    return out;
  }

  // Rung 2: the seed tree, unbounded. MST/Steiner construction is pure
  // geometry, so this terminates quickly and (almost) always succeeds.
  SolverConfig unbounded = bounded;
  unbounded.stop = runtime::StopToken{};
  unbounded.ldrg.stop = runtime::StopToken{};
  runtime::StatusOr<Solution> seed =
      try_solve(net, seed_strategy(strategy), elmore, unbounded);
  if (seed.ok()) {
    out.solution = std::move(seed).value();
    out.outcome.disposition = NetDisposition::kDegraded;
    out.outcome.rung = 2;
    return out;
  }

  out.outcome.disposition = NetDisposition::kQuarantined;
  out.outcome.status = runtime::Status(
      first.code(), first.message() + "; seed-tree passthrough also failed: " +
                        seed.status().to_string());
  return out;
}

std::string outcomes_to_json(std::span<const NetOutcome> outcomes) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const NetOutcome& o = outcomes[i];
    if (i > 0) out << ",";
    out << "\n  {\"index\": " << o.net_index << ", \"name\": ";
    append_json_string(out, o.net_name);
    out << ", \"disposition\": \"" << net_disposition_name(o.disposition)
        << "\", \"rung\": " << o.rung << ", \"status\": \""
        << runtime::status_code_name(o.status.code()) << "\", \"message\": ";
    append_json_string(out, o.status.message());
    out << "}";
  }
  out << (outcomes.empty() ? "]" : "\n]");
  return out.str();
}

}  // namespace ntr::core
