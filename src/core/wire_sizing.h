#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "delay/evaluator.h"
#include "graph/routing_graph.h"

namespace ntr::core {

/// One accepted widening step of the greedy wire-sizing loop.
struct SizingStep {
  graph::EdgeId edge = graph::kInvalidEdge;
  double old_width = 1.0;
  double new_width = 1.0;
  double objective_before = 0.0;
  double objective_after = 0.0;
  double area_after = 0.0;  ///< sum(length * width) after the step
};

struct WireSizingOptions {
  /// Discrete widths available to each wire, in nominal-width multiples.
  /// The paper motivates integral widths (two merged parallel wires of
  /// width w behave as one wire of width 2w).
  std::vector<double> widths{1.0, 2.0, 3.0, 4.0};

  /// Abort once total wire area would exceed this multiple of the
  /// unit-width area (infinity = unconstrained).
  double max_area_ratio = std::numeric_limits<double>::infinity();

  /// CSORG weights, indexed like graph.sinks(); empty = minimize the max.
  std::vector<double> criticality;

  double min_relative_improvement = 1e-9;
};

struct WireSizingResult {
  graph::RoutingGraph graph;
  double initial_objective = 0.0;
  double final_objective = 0.0;
  double initial_area = 0.0;
  double final_area = 0.0;
  std::vector<SizingStep> steps;
};

/// Greedy solver for the Wire-Sized Optimal Routing Graph problem (WSORG,
/// Section 5.2): repeatedly bump the single edge to its next available
/// width where the bump yields the largest delay improvement, until no
/// bump improves the objective (or the area budget is exhausted). Wider
/// wires have proportionally lower resistance and higher capacitance
/// (Technology::wire_resistance / wire_capacitance), so -- like non-tree
/// edge insertion -- each acceptance is a resistance-vs-capacitance trade.
/// Works on trees and non-tree graphs alike, and composes with ldrg() to
/// realize the paper's HORG formulation (Section 5.3).
WireSizingResult greedy_wire_sizing(const graph::RoutingGraph& initial,
                                    const delay::DelayEvaluator& evaluator,
                                    const WireSizingOptions& options = {});

}  // namespace ntr::core
