#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "delay/evaluator.h"
#include "core/solver.h"
#include "runtime/status.h"
#include "runtime/stop.h"

/// Fault-tolerant solving: the per-net degradation ladder.
///
/// A batch driver (the timing flow, the experiment harness) must not die
/// because one net's matrix went singular or one transient march ran past
/// its deadline. solve_resilient() runs the requested construction and,
/// on a recoverable failure, walks down a fixed ladder:
///
///   rung 0  the requested strategy with the caller's evaluator
///   rung 1  the same strategy re-driven by the graph-Elmore evaluator
///           (orders of magnitude cheaper than the transient oracle, and
///           immune to its time-march failures)
///   rung 2  the strategy's seed tree (MST / 1-Steiner / ERT) measured
///           with graph Elmore, run without a deadline -- the
///           always-terminates passthrough
///
/// Every net therefore ships *some* routing unless even the passthrough
/// fails (or its input is malformed), in which case it is quarantined.
/// The outcome of each net -- which rung shipped, and the first failure
/// that forced a fallback -- is recorded in a NetOutcome for the batch
/// report.
namespace ntr::core {

/// What happened to one net in a resilient batch.
enum class NetDisposition : std::uint8_t {
  kOk,           ///< rung 0 succeeded; the requested routing shipped
  kDegraded,     ///< a lower rung shipped a valid (but weaker) routing
  kQuarantined,  ///< no rung produced a routing; the net was dropped
};

/// Stable lowercase name ("ok", "degraded", "quarantined").
[[nodiscard]] const char* net_disposition_name(NetDisposition d);

/// Batch-driver policy when a net's rung-0 solve fails.
enum class OnError : std::uint8_t {
  kFail,     ///< quarantine without retry; the driver aborts the batch
  kDegrade,  ///< walk the ladder (the default)
  kSkip,     ///< quarantine without retry; the driver drops the net
};

[[nodiscard]] const char* on_error_name(OnError policy);
/// Parses "fail" / "degrade" / "skip"; nullopt for anything else.
[[nodiscard]] std::optional<OnError> on_error_from_name(std::string_view name);

struct ResilienceOptions {
  OnError on_error = OnError::kDegrade;
  /// Deadline/cancellation for rungs 0 and 1. Rung 2 deliberately runs
  /// unbounded: the passthrough is cheap and must always complete so the
  /// batch can account for every net.
  runtime::StopToken stop{};
};

/// Per-net record of a resilient solve.
struct NetOutcome {
  std::size_t net_index = 0;  ///< position in the batch (caller-assigned)
  std::string net_name;       ///< caller-assigned label ("" when unnamed)
  NetDisposition disposition = NetDisposition::kOk;
  /// Ladder rung that shipped the routing (0/1/2); meaningless when
  /// quarantined.
  int rung = 0;
  /// ok for kOk; otherwise the first failure that forced the fallback,
  /// with any later passthrough failure appended.
  runtime::Status status;
};

/// A routing that may be absent (quarantined net) plus its outcome.
struct GuardedSolution {
  std::optional<Solution> solution;
  NetOutcome outcome;
};

/// The seed tree the ladder falls back to: the construction each strategy
/// starts from (kSldrg -> k1Steiner, kErtLdrg -> kErt, everything else ->
/// kMst, which is pure geometry and cannot fail numerically).
[[nodiscard]] Strategy seed_strategy(Strategy s);

/// solve() with the typed-error boundary: any escaping exception becomes
/// a non-ok Status (singular matrix -> kSingular, tripped deadline ->
/// kTimeout, contract violation -> kInternal, ...). Never throws.
[[nodiscard]] runtime::StatusOr<Solution> try_solve(
    const graph::Net& net, Strategy strategy,
    const delay::DelayEvaluator& evaluator, const SolverConfig& config = {});

/// Runs the degradation ladder described above. Never throws; a batch
/// driver inspects outcome.disposition (and its own OnError policy) to
/// decide whether to continue. `resilience.stop` overrides config.stop
/// when engaged.
[[nodiscard]] GuardedSolution solve_resilient(
    const graph::Net& net, Strategy strategy,
    const delay::DelayEvaluator& evaluator, const SolverConfig& config = {},
    const ResilienceOptions& resilience = {});

/// Serializes a batch's outcomes as a JSON array (stable key order, one
/// object per net) for the --report-json failure report.
[[nodiscard]] std::string outcomes_to_json(std::span<const NetOutcome> outcomes);

}  // namespace ntr::core
