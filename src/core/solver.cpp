#include "core/solver.h"

#include <stdexcept>

#include "check/contracts.h"
#include "graph/validate.h"
#include "core/heuristics.h"
#include "route/constructions.h"
#include "route/ert.h"

namespace ntr::core {

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kMst: return "MST";
    case Strategy::kStar: return "SPT/star";
    case Strategy::kSteinerTree: return "1-Steiner";
    case Strategy::kErt: return "ERT";
    case Strategy::kSert: return "SERT";
    case Strategy::kLdrg: return "LDRG";
    case Strategy::kSldrg: return "SLDRG";
    case Strategy::kErtLdrg: return "ERT+LDRG";
    case Strategy::kH1: return "H1";
    case Strategy::kH2: return "H2";
    case Strategy::kH3: return "H3";
  }
  throw std::logic_error("strategy_name: unknown strategy");
}

Solution solve(const graph::Net& net, Strategy strategy,
               const delay::DelayEvaluator& evaluator, const SolverConfig& config) {
  net.validate();

  // An already-tripped token fails the solve before any construction work,
  // so an expired deadline costs a batch driver one poll per net, not one
  // tree construction per net.
  if (config.stop.engaged()) config.stop.throw_if_stopped("solve");

  // The top-level thread knob wins over the per-strategy one when set.
  LdrgOptions ldrg_options = config.ldrg;
  if (config.parallel.num_threads != 1) ldrg_options.parallel = config.parallel;
  if (config.stop.engaged()) ldrg_options.stop = config.stop;

  Solution solution;
  solution.strategy = strategy;

  switch (strategy) {
    case Strategy::kMst:
      solution.graph = graph::mst_routing(net);
      break;
    case Strategy::kStar:
      solution.graph = route::star_routing(net);
      break;
    case Strategy::kSteinerTree:
      solution.graph = steiner::iterated_one_steiner(net, config.steiner).graph;
      break;
    case Strategy::kErt:
      solution.graph = route::elmore_routing_tree(net, config.tech).graph;
      break;
    case Strategy::kSert: {
      route::ErtOptions opts;
      opts.steiner = true;
      solution.graph = route::elmore_routing_tree(net, config.tech, opts).graph;
      break;
    }
    case Strategy::kLdrg:
      solution.graph = ldrg(graph::mst_routing(net), evaluator, ldrg_options).graph;
      break;
    case Strategy::kSldrg: {
      const auto steiner_tree = steiner::iterated_one_steiner(net, config.steiner);
      solution.graph = ldrg(steiner_tree.graph, evaluator, ldrg_options).graph;
      break;
    }
    case Strategy::kErtLdrg: {
      const auto ert = route::elmore_routing_tree(net, config.tech);
      solution.graph = ldrg(ert.graph, evaluator, ldrg_options).graph;
      break;
    }
    case Strategy::kH1:
      solution.graph =
          h1(graph::mst_routing(net), evaluator, config.h1_max_iterations).graph;
      break;
    case Strategy::kH2:
      solution.graph = h2(graph::mst_routing(net), config.tech).graph;
      break;
    case Strategy::kH3:
      solution.graph = h3(graph::mst_routing(net), config.tech).graph;
      break;
  }

  // Every strategy must hand back a structurally sound routing of the
  // whole net: sourced at node 0, connected, Manhattan edge lengths.
  NTR_DCHECK(check::require(
      graph::validate_graph(solution.graph,
                            {.require_source = true, .require_connected = true}),
      "solve postcondition"));
  NTR_DCHECK(solution.graph.node_count() >= net.size());

  solution.delay_s = evaluator.max_delay(solution.graph);
  solution.cost_um = solution.graph.total_wirelength();
  return solution;
}

}  // namespace ntr::core
