#pragma once

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::core {

struct ScreenedLdrgOptions {
  LdrgOptions base{};
  /// How many screener-ranked candidates are verified with the accurate
  /// evaluator per round. 1 = trust the screen completely; larger values
  /// close the (small) fidelity gap between graph Elmore and simulation.
  std::size_t verify_top_k = 4;
};

/// Two-stage LDRG: rank every absent node pair with the O(n)-per-candidate
/// Sherman-Morrison moment screener, then verify only the top-K candidates
/// with the accurate evaluator and accept the best verified improvement.
///
/// Rationale: plain ldrg() runs one full delay evaluation per candidate --
/// a quadratic number of simulations per round, exactly the cost the paper
/// flags as impractical for SPICE-in-the-loop routing. The screener brings
/// a whole round's ranking down to the cost of ONE dense solve while the
/// accurate oracle still gates every accepted edge, so the result is
/// certified by the same evaluator plain LDRG would use.
LdrgResult ldrg_screened(const graph::RoutingGraph& initial,
                         const delay::DelayEvaluator& evaluator,
                         const spice::Technology& tech,
                         const ScreenedLdrgOptions& options = {});

}  // namespace ntr::core
