#include "core/horg.h"

#include <stdexcept>

namespace ntr::core {

namespace {

double objective(const graph::RoutingGraph& g, const delay::DelayEvaluator& evaluator,
                 const std::vector<double>& criticality) {
  return criticality.empty() ? evaluator.max_delay(g)
                             : evaluator.weighted_delay(g, criticality);
}

double next_width(const std::vector<double>& widths, double current) {
  double best = 0.0;
  for (const double w : widths)
    if (w > current && (best == 0.0 || w < best)) best = w;
  return best;
}

}  // namespace

HorgResult horg_greedy(const graph::RoutingGraph& initial,
                       const delay::DelayEvaluator& evaluator,
                       const HorgOptions& options) {
  if (!initial.is_connected())
    throw std::invalid_argument("horg_greedy: routing must be connected");
  if (options.widths.empty())
    throw std::invalid_argument("horg_greedy: widths must be non-empty");

  HorgResult result;
  result.graph = initial;
  result.initial_objective = objective(result.graph, evaluator, options.criticality);
  result.initial_area = result.graph.total_wire_area();
  result.final_objective = result.initial_objective;
  result.final_area = result.initial_area;
  const double area_budget = options.max_area_ratio * result.initial_area;

  while (result.steps.size() < options.max_moves) {
    const double current = result.final_objective;
    const double accept_below = current * (1.0 - options.min_relative_improvement);

    // Best move by improvement per unit added area; moves that add no
    // area (impossible here: every move adds metal) or do not improve
    // are skipped.
    double best_score = 0.0;
    HorgStep best;
    bool found = false;

    const auto consider = [&](HorgStep step, double trial_objective,
                              double added_area) {
      if (trial_objective >= accept_below || added_area <= 0.0) return;
      if (result.final_area + added_area > area_budget) return;
      const double score = (current - trial_objective) / added_area;
      if (!found || score > best_score) {
        best_score = score;
        step.objective_before = current;
        step.objective_after = trial_objective;
        best = step;
        found = true;
      }
    };

    // ORG moves: every absent pair.
    for (graph::NodeId u = 0; u < result.graph.node_count(); ++u) {
      for (graph::NodeId v = u + 1; v < result.graph.node_count(); ++v) {
        if (result.graph.has_edge(u, v)) continue;
        graph::RoutingGraph trial = result.graph;
        const graph::EdgeId e = trial.add_edge(u, v);
        const double added_area = trial.edge(e).length;
        HorgStep step;
        step.kind = HorgStep::Kind::kAddEdge;
        step.u = u;
        step.v = v;
        consider(step, objective(trial, evaluator, options.criticality), added_area);
      }
    }
    // WSORG moves: widen any edge one notch.
    for (graph::EdgeId e = 0; e < result.graph.edge_count(); ++e) {
      const graph::GraphEdge& edge = result.graph.edge(e);
      const double w = next_width(options.widths, edge.width);
      if (w == 0.0) continue;
      graph::RoutingGraph trial = result.graph;
      trial.set_edge_width(e, w);
      HorgStep step;
      step.kind = HorgStep::Kind::kWidenEdge;
      step.edge = e;
      step.new_width = w;
      consider(step, objective(trial, evaluator, options.criticality),
               edge.length * (w - edge.width));
    }

    if (!found) break;

    if (best.kind == HorgStep::Kind::kAddEdge) {
      result.graph.add_edge(best.u, best.v);
    } else {
      result.graph.set_edge_width(best.edge, best.new_width);
    }
    result.final_objective = best.objective_after;
    result.final_area = result.graph.total_wire_area();
    best.area_after = result.final_area;
    result.steps.push_back(best);
  }
  return result;
}

}  // namespace ntr::core
