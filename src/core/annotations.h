#pragma once

/// Source-level annotations consumed by ntr_analyze's interprocedural
/// passes. They expand to nothing: the *token* is the contract, and the
/// analyzer reads it straight off the parse.
///
/// NTR_HOT marks a function as a hot-path root: it (and everything
/// transitively reachable from it in the project call graph) must not
/// allocate per element -- no `new`, no make_unique/make_shared, no
/// unreserved vector growth, no string construction. The alloc-in-hot-path
/// pass enforces this; docs/static_analysis.md ("Interprocedural passes")
/// documents the contract and the `ntr-alloc-in-hot-path(<why>)`
/// justification grammar for deliberate exceptions (one-time setup,
/// cached state, cold error paths).
///
/// Placement: directly before the function's return type on a definition,
/// e.g. `NTR_HOT RouteResult ldrg(...) { ... }`. Annotate the engine
/// entry points that sit on per-candidate or per-timestep loops; callees
/// inherit hotness through the call graph, so inner helpers stay
/// unannotated.
#define NTR_HOT
