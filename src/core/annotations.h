#pragma once

/// Source-level annotations consumed by ntr_analyze's interprocedural
/// passes. They expand to nothing: the *token* is the contract, and the
/// analyzer reads it straight off the parse.
///
/// NTR_HOT marks a function as a hot-path root: it (and everything
/// transitively reachable from it in the project call graph) must not
/// allocate per element -- no `new`, no make_unique/make_shared, no
/// unreserved vector growth, no string construction. The alloc-in-hot-path
/// pass enforces this; docs/static_analysis.md ("Interprocedural passes")
/// documents the contract and the `ntr-alloc-in-hot-path(<why>)`
/// justification grammar for deliberate exceptions (one-time setup,
/// cached state, cold error paths).
///
/// Placement: directly before the function's return type on a definition,
/// e.g. `NTR_HOT RouteResult ldrg(...) { ... }`. Annotate the engine
/// entry points that sit on per-candidate or per-timestep loops; callees
/// inherit hotness through the call graph, so inner helpers stay
/// unannotated.
#define NTR_HOT

/// NTR_VALIDATED marks a value -- or a whole function -- as having been
/// range-checked against untrusted input. The wire-taint pass treats
/// anything that crosses the network/file/environment boundary (socket
/// reads, decoded frame lengths, parsed JSON values, net-file fields,
/// getenv) as tainted until a sanitizer intervenes; this annotation is
/// the explicit third sanitizer, for validation the pass's heuristics
/// cannot see (a table lookup, a checksum, validation performed by a
/// caller the summary machinery cannot prove).
///
/// Placement, either of:
///   * in a declaration's type position, marking that one value:
///       NTR_VALIDATED std::size_t n = decode_count(frame);
///   * directly before a function's return type (like NTR_HOT), marking
///     the function as a validation boundary: its return value is
///     trusted, and taint passed into it is not tracked through its
///     body (the function owns its own checking).
/// Use it sparingly -- every use is an unchecked claim; prefer the
/// checked-Status idiom or an explicit clamp where possible. See
/// docs/static_analysis.md ("Taint analysis").
#define NTR_VALIDATED

/// NTR_GUARDED_BY(m) marks a data member as protected by the mutex
/// member (or global) `m`: every read or write of the member must happen
/// while `m` is held, either lexically (a guard on `m` in scope at the
/// access) or via the caller (the lock-discipline pass propagates
/// held-at-entry sets over the call graph, so a private helper that is
/// only ever called under the lock needs no annotation gymnastics). The
/// `unguarded-member-access` pass enforces this; deliberate exceptions
/// (single-threaded setup before any thread exists) carry an
/// `ntr-unguarded-member-access(<why>)` justification.
///
/// Placement: between the member's name and the ';', e.g.
///   std::size_t total_ NTR_GUARDED_BY(mutex_) = 0;
/// The argument is a mutex expression resolved like any other mutex
/// identity: a member name of the same class, `impl_->mutex`, or a
/// namespace-scope mutex. Atomics need no annotation -- they are their
/// own discipline. See docs/static_analysis.md ("Lock discipline").
#define NTR_GUARDED_BY(m)
