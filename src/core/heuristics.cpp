#include "core/heuristics.h"

#include <algorithm>
#include <stdexcept>

#include "delay/elmore.h"
#include "graph/paths.h"

namespace ntr::core {

namespace {

/// The sink maximizing `score` that is not already adjacent to the source
/// (adding a parallel source edge is a no-op in the unsized regime).
graph::NodeId best_unconnected_sink(const graph::RoutingGraph& g,
                                    const std::vector<double>& score) {
  graph::NodeId best = graph::kInvalidNode;
  double best_score = -1.0;
  for (const graph::NodeId s : g.sinks()) {
    if (g.has_edge(g.source(), s)) continue;
    if (score[s] > best_score) {
      best_score = score[s];
      best = s;
    }
  }
  return best;
}

}  // namespace

HeuristicResult h1(const graph::RoutingGraph& tree,
                   const delay::DelayEvaluator& evaluator,
                   std::size_t max_iterations) {
  HeuristicResult result;
  result.graph = tree;

  std::vector<double> sink_delays = evaluator.sink_delays(result.graph);
  double current = *std::max_element(sink_delays.begin(), sink_delays.end());
  result.initial_objective = current;
  result.final_objective = current;

  for (std::size_t it = 0; it < max_iterations; ++it) {
    // Spread per-sink delays onto node ids for the shared selection helper.
    std::vector<double> score(result.graph.node_count(), -1.0);
    const std::vector<graph::NodeId> sinks = result.graph.sinks();
    for (std::size_t i = 0; i < sinks.size(); ++i) score[sinks[i]] = sink_delays[i];

    const graph::NodeId target = best_unconnected_sink(result.graph, score);
    if (target == graph::kInvalidNode) break;

    graph::RoutingGraph trial = result.graph;
    trial.add_edge(trial.source(), target);
    const std::vector<double> trial_delays = evaluator.sink_delays(trial);
    const double trial_max =
        *std::max_element(trial_delays.begin(), trial_delays.end());
    if (trial_max >= current) break;  // the paper's stop rule: no improvement

    result.steps.push_back(LdrgStep{result.graph.source(), target, current, trial_max,
                                    trial.total_wirelength()});
    result.graph = std::move(trial);
    sink_delays = trial_delays;
    current = trial_max;
    result.final_objective = trial_max;
  }
  return result;
}

namespace {

HeuristicResult elmore_one_shot(const graph::RoutingGraph& tree,
                                const spice::Technology& tech, bool weight_by_path) {
  if (!tree.is_tree())
    throw std::invalid_argument("h2/h3: input routing must be a tree");

  HeuristicResult result;
  result.graph = tree;

  const std::vector<double> elmore = delay::elmore_node_delays(tree, tech);
  const graph::RootedTree rooted = graph::root_tree(tree, tree.source());
  const std::vector<double> pathlen = graph::tree_path_lengths(tree, rooted);

  std::vector<double> score(tree.node_count(), -1.0);
  for (const graph::NodeId s : tree.sinks()) {
    if (weight_by_path) {
      const double new_edge =
          geom::manhattan_distance(tree.node(tree.source()).pos, tree.node(s).pos);
      // A sink coincident with the source cannot occur (validated nets),
      // but a degenerate direct distance is still guarded.
      score[s] = new_edge > 0.0 ? pathlen[s] * elmore[s] / new_edge : -1.0;
    } else {
      score[s] = elmore[s];
    }
  }

  double worst = 0.0;
  for (const graph::NodeId s : tree.sinks()) worst = std::max(worst, elmore[s]);
  result.initial_objective = worst;
  result.final_objective = worst;

  const graph::NodeId target = best_unconnected_sink(tree, score);
  if (target != graph::kInvalidNode) {
    result.graph.add_edge(result.graph.source(), target);
    result.steps.push_back(LdrgStep{result.graph.source(), target, worst, worst,
                                    result.graph.total_wirelength()});
    // Tree Elmore is undefined on the resulting cyclic graph, so the
    // heuristic cannot re-score it (the paper makes the same point);
    // final_objective keeps the tree value and callers re-measure with an
    // accurate evaluator.
  }
  return result;
}

}  // namespace

HeuristicResult h2(const graph::RoutingGraph& tree, const spice::Technology& tech) {
  return elmore_one_shot(tree, tech, /*weight_by_path=*/false);
}

HeuristicResult h3(const graph::RoutingGraph& tree, const spice::Technology& tech) {
  return elmore_one_shot(tree, tech, /*weight_by_path=*/true);
}

}  // namespace ntr::core
