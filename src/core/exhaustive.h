#pragma once

#include <cstddef>
#include <vector>

#include "delay/evaluator.h"
#include "graph/routing_graph.h"

namespace ntr::core {

struct ExhaustiveOrgOptions {
  /// Enumerate all subsets of absent edges up to this size. The count of
  /// delay evaluations is sum_{j<=k} C(m, j) for m absent pairs -- only
  /// sane for small nets / small k (k=2 on a 10-pin net is ~700 evals).
  std::size_t max_extra_edges = 2;
  /// CSORG weights, indexed like graph.sinks(); empty = minimize the max.
  std::vector<double> criticality;
};

struct ExhaustiveOrgResult {
  graph::RoutingGraph graph;
  double objective = 0.0;
  std::size_t extra_edges = 0;
  std::size_t evaluated = 0;  ///< how many candidate graphs were measured
};

/// The OPTIMAL k-edge augmentation of `initial`: brute force over every
/// subset of up to max_extra_edges absent node pairs, measured by
/// `evaluator`. LDRG is a greedy approximation of exactly this search, so
/// the gap between the two quantifies how much the greedy loop leaves on
/// the table (see bench/ablation_optimality).
ExhaustiveOrgResult exhaustive_org_augmentation(const graph::RoutingGraph& initial,
                                                const delay::DelayEvaluator& evaluator,
                                                const ExhaustiveOrgOptions& options = {});

}  // namespace ntr::core
