#include "core/wire_sizing.h"

#include <stdexcept>

namespace ntr::core {

namespace {

double objective(const graph::RoutingGraph& g, const delay::DelayEvaluator& evaluator,
                 const std::vector<double>& criticality) {
  return criticality.empty() ? evaluator.max_delay(g)
                             : evaluator.weighted_delay(g, criticality);
}

/// Smallest available width strictly above `current`, or 0 if none.
double next_width(const std::vector<double>& widths, double current) {
  double best = 0.0;
  for (const double w : widths)
    if (w > current && (best == 0.0 || w < best)) best = w;
  return best;
}

}  // namespace

WireSizingResult greedy_wire_sizing(const graph::RoutingGraph& initial,
                                    const delay::DelayEvaluator& evaluator,
                                    const WireSizingOptions& options) {
  if (!initial.is_connected())
    throw std::invalid_argument("greedy_wire_sizing: routing must be connected");
  if (options.widths.empty())
    throw std::invalid_argument("greedy_wire_sizing: widths must be non-empty");

  WireSizingResult result;
  result.graph = initial;
  result.initial_objective = objective(result.graph, evaluator, options.criticality);
  result.initial_area = result.graph.total_wire_area();
  result.final_objective = result.initial_objective;
  result.final_area = result.initial_area;
  const double area_budget = options.max_area_ratio * result.initial_area;

  while (true) {
    const double current = result.final_objective;
    const double accept_below = current * (1.0 - options.min_relative_improvement);

    double best_objective = accept_below;
    graph::EdgeId best_edge = graph::kInvalidEdge;
    double best_width = 0.0;

    for (graph::EdgeId e = 0; e < result.graph.edge_count(); ++e) {
      const graph::GraphEdge& edge = result.graph.edge(e);
      const double w = next_width(options.widths, edge.width);
      if (w == 0.0) continue;  // already at the widest available width
      const double new_area =
          result.final_area + edge.length * (w - edge.width);
      if (new_area > area_budget) continue;

      graph::RoutingGraph trial = result.graph;
      trial.set_edge_width(e, w);
      const double t = objective(trial, evaluator, options.criticality);
      if (t < best_objective) {
        best_objective = t;
        best_edge = e;
        best_width = w;
      }
    }

    if (best_edge == graph::kInvalidEdge) break;

    SizingStep step;
    step.edge = best_edge;
    step.old_width = result.graph.edge(best_edge).width;
    step.new_width = best_width;
    step.objective_before = current;
    step.objective_after = best_objective;
    result.graph.set_edge_width(best_edge, best_width);
    result.final_objective = best_objective;
    result.final_area = result.graph.total_wire_area();
    step.area_after = result.final_area;
    result.steps.push_back(step);
  }
  return result;
}

}  // namespace ntr::core
