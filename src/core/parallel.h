#pragma once

#include <cstddef>
#include <functional>

namespace ntr::core {

/// How many threads a candidate-evaluation loop may use. The default of 1
/// keeps every library entry point serial unless a caller opts in; 0 asks
/// for one lane per hardware thread. Plumbed from the CLI (--threads) and
/// the bench harness (NTR_THREADS) down into the LDRG family.
struct ParallelConfig {
  std::size_t num_threads = 1;  ///< 0 = hardware concurrency

  /// The effective lane count: num_threads, or the hardware concurrency
  /// when num_threads is 0 (at least 1 when even that is unknown).
  [[nodiscard]] std::size_t resolved_threads() const;

  [[nodiscard]] bool serial() const { return resolved_threads() <= 1; }
};

/// A fixed-size pool of worker threads executing one "lane job" at a time.
///
/// The pool exists to make candidate scans parallel *without* making them
/// nondeterministic: work is always split by static chunking (below), so
/// which lane computes which candidate depends only on the lane count,
/// never on scheduling. The calling thread participates as lane 0, so a
/// pool built for n lanes owns n-1 threads.
class ThreadPool {
 public:
  /// Creates a pool with `lanes` total lanes (clamped to >= 1). Lane 0 is
  /// the calling thread; lanes-1 worker threads are started immediately
  /// and live until destruction.
  explicit ThreadPool(std::size_t lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t lane_count() const;

  /// Runs fn(lane) once per lane in [0, lane_count()) and blocks until
  /// every lane finished. fn runs on the calling thread for lane 0 and on
  /// the pool's workers for the rest. If any lane throws, the first
  /// exception (in lane order) is rethrown here after all lanes complete.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  struct Impl;
  Impl* impl_;
};

/// Deterministic parallel-for with static chunking: splits [0, n) into
/// lane_count contiguous chunks whose sizes differ by at most one, and
/// runs fn(lane, begin, end) for each non-empty chunk. Chunk boundaries
/// are a pure function of (n, lane count), so a reduction that combines
/// per-chunk results in index order is bit-identical for every lane count.
/// A null pool (or a 1-lane pool) degenerates to fn(0, 0, n) inline.
void parallel_chunks(ThreadPool* pool, std::size_t n,
                     const std::function<void(std::size_t lane, std::size_t begin,
                                              std::size_t end)>& fn);

/// The half-open chunk assigned to `lane` out of `lanes` over [0, n):
/// the first n % lanes chunks take one extra element. Exposed so tests
/// and reductions can reason about the exact split.
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  [[nodiscard]] std::size_t size() const { return end - begin; }
  [[nodiscard]] bool empty() const { return begin == end; }
};
[[nodiscard]] ChunkRange chunk_range(std::size_t n, std::size_t lane,
                                     std::size_t lanes);

}  // namespace ntr::core

namespace ntr {
using core::ParallelConfig;  ///< the name the rest of the library uses
}  // namespace ntr
