#include "core/ldrg_screened.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <stdexcept>

#include "check/faultinject.h"
#include "core/annotations.h"
#include "core/parallel.h"
#include "delay/screener.h"
#include "graph/routing_graph.h"
#include "runtime/status.h"

namespace ntr::core {

namespace {

double objective(const graph::RoutingGraph& g, const delay::DelayEvaluator& evaluator,
                 const std::vector<double>& criticality) {
  return criticality.empty() ? evaluator.max_delay(g)
                             : evaluator.weighted_delay(g, criticality);
}

/// Screener-side objective for one candidate: max over sinks, or the
/// criticality-weighted sum, of the screened per-node Elmore delays.
double screened_objective(const delay::EdgeCandidateScreener& screener,
                          const graph::RoutingGraph& g, graph::NodeId u,
                          graph::NodeId v, const std::vector<double>& criticality) {
  const std::vector<double> delays = screener.screened_delays(u, v);
  const std::vector<graph::NodeId> sinks = g.sinks();
  if (criticality.empty()) {
    double worst = 0.0;
    for (const graph::NodeId s : sinks) worst = std::max(worst, delays[s]);
    return worst;
  }
  if (criticality.size() != sinks.size())
    throw std::invalid_argument("ldrg_screened: criticality size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < sinks.size(); ++i)
    sum += criticality[i] * delays[sinks[i]];
  return sum;
}

}  // namespace

// NTR_HOT: shares ldrg's per-round scan loop, with the Elmore screen in
// front of the exact oracle; same no-allocation discipline applies.
NTR_HOT LdrgResult ldrg_screened(const graph::RoutingGraph& initial,
                                 const delay::DelayEvaluator& evaluator,
                                 const spice::Technology& tech,
                                 const ScreenedLdrgOptions& options) {
  if (!initial.is_connected())
    throw std::invalid_argument("ldrg_screened: initial routing must be connected");
  if (options.verify_top_k == 0)
    throw std::invalid_argument("ldrg_screened: verify_top_k must be positive");

  LdrgResult result;
  result.graph = initial;
  result.initial_objective =
      objective(result.graph, evaluator, options.base.criticality);
  result.initial_cost = result.graph.total_wirelength();
  result.final_objective = result.initial_objective;
  result.final_cost = result.initial_cost;

  const bool weighted = !options.base.criticality.empty();
  const std::size_t lanes = options.base.parallel.resolved_threads();
  std::unique_ptr<ThreadPool> pool;
  if (lanes > 1) pool = std::make_unique<ThreadPool>(lanes);

  const bool stop_engaged = options.base.stop.engaged();
  while (result.steps.size() < options.base.max_added_edges) {
    NTR_FAULT_POINT(kLdrgDeadline);
    if (stop_engaged) options.base.stop.throw_if_stopped("ldrg_screened round");

    const double current = result.final_objective;
    const double accept_below =
        current * (1.0 - options.base.min_relative_improvement);

    // Stage 1: rank every absent pair by the moment screen. Scores land in
    // a pre-sized array at their enumeration index, so the ranking input
    // is bit-identical for every lane count.
    const delay::EdgeCandidateScreener screener(result.graph, tech);
    struct Ranked {
      double score;
      graph::NodeId u, v;
    };
    NTR_FAULT_POINT(kLdrgAllocation);
    std::vector<Ranked> ranked;
    ranked.reserve(result.graph.node_count() *
                   (result.graph.node_count() - 1) / 2);
    for (graph::NodeId u = 0; u < result.graph.node_count(); ++u) {
      for (graph::NodeId v = u + 1; v < result.graph.node_count(); ++v) {
        if (result.graph.has_edge(u, v)) continue;
        ranked.push_back({0.0, u, v});
      }
    }
    if (ranked.empty()) break;
    // Same stop protocol as the verify scan below: one lane observing a
    // tripped token raises the shared flag, every lane breaks at its next
    // stride check, and the trip rethrows as a typed error after the join.
    std::atomic<bool> screen_stop_hit{false};
    parallel_chunks(pool.get(), ranked.size(),
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      for (std::size_t i = begin; i < end; ++i) {
                        if (stop_engaged && (i - begin) % 16 == 0) {
                          if (screen_stop_hit.load(std::memory_order_relaxed) ||
                              options.base.stop.poll() !=
                                  runtime::StatusCode::kOk) {
                            screen_stop_hit.store(true,
                                                  std::memory_order_relaxed);
                            break;
                          }
                        }
                        ranked[i].score =
                            screened_objective(screener, result.graph, ranked[i].u,
                                               ranked[i].v, options.base.criticality);
                      }
                    });
    if (screen_stop_hit.load(std::memory_order_relaxed))
      options.base.stop.throw_if_stopped("ldrg_screened screen scan");
    const std::size_t top_k = std::min(options.verify_top_k, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(top_k),
                      ranked.end(),
                      [](const Ranked& a, const Ranked& b) { return a.score < b.score; });

    // Stage 2: verify the top candidates with the accurate oracle, again
    // over static chunks with lane-local branch-and-bound cutoffs; the
    // winner is reduced by (score, rank index).
    struct LaneBest {
      double score = std::numeric_limits<double>::infinity();
      std::size_t index = std::numeric_limits<std::size_t>::max();
    };
    std::vector<LaneBest> lane_best(lanes);
    // Shared flag: a lane that sees a tripped token flags the others, the
    // pool joins cleanly, and the trip surfaces as a typed error below.
    std::atomic<bool> stop_hit{false};
    parallel_chunks(pool.get(), top_k,
                    [&](std::size_t lane, std::size_t begin, std::size_t end) {
                      LaneBest best;
                      double bound = accept_below;
                      for (std::size_t k = begin; k < end; ++k) {
                        if (stop_engaged && (k - begin) % 16 == 0) {
                          if (stop_hit.load(std::memory_order_relaxed) ||
                              options.base.stop.poll() !=
                                  runtime::StatusCode::kOk) {
                            stop_hit.store(true, std::memory_order_relaxed);
                            break;
                          }
                        }
                        graph::RoutingGraph trial = result.graph;
                        trial.add_edge(ranked[k].u, ranked[k].v);
                        const double t =
                            (!weighted && options.base.bounded_scoring)
                                ? evaluator.bounded_max_delay(trial, bound)
                                : objective(trial, evaluator,
                                            options.base.criticality);
                        if (t < bound) {
                          bound = t;
                          best = LaneBest{t, k};
                        }
                      }
                      lane_best[lane] = best;
                    });
    if (stop_hit.load(std::memory_order_relaxed))
      options.base.stop.throw_if_stopped("ldrg_screened verify scan");
    LaneBest best;
    for (const LaneBest& lb : lane_best) {
      if (lb.index == std::numeric_limits<std::size_t>::max()) continue;
      if (lb.score < best.score ||
          (lb.score == best.score && lb.index < best.index))
        best = lb;
    }
    if (best.index == std::numeric_limits<std::size_t>::max()) break;

    result.graph.add_edge(ranked[best.index].u, ranked[best.index].v);
    result.final_objective = best.score;
    result.final_cost = result.graph.total_wirelength();
    // ntr-alloc-in-hot-path(one step per accepted round; the trace IS the result)
    result.steps.push_back(LdrgStep{ranked[best.index].u, ranked[best.index].v,
                                    current, best.score, result.final_cost});
  }
  return result;
}

}  // namespace ntr::core
