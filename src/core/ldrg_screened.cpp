#include "core/ldrg_screened.h"

#include <algorithm>
#include <stdexcept>

#include "delay/screener.h"

namespace ntr::core {

namespace {

double objective(const graph::RoutingGraph& g, const delay::DelayEvaluator& evaluator,
                 const std::vector<double>& criticality) {
  return criticality.empty() ? evaluator.max_delay(g)
                             : evaluator.weighted_delay(g, criticality);
}

/// Screener-side objective for one candidate: max over sinks, or the
/// criticality-weighted sum, of the screened per-node Elmore delays.
double screened_objective(const delay::EdgeCandidateScreener& screener,
                          const graph::RoutingGraph& g, graph::NodeId u,
                          graph::NodeId v, const std::vector<double>& criticality) {
  const std::vector<double> delays = screener.screened_delays(u, v);
  const std::vector<graph::NodeId> sinks = g.sinks();
  if (criticality.empty()) {
    double worst = 0.0;
    for (const graph::NodeId s : sinks) worst = std::max(worst, delays[s]);
    return worst;
  }
  if (criticality.size() != sinks.size())
    throw std::invalid_argument("ldrg_screened: criticality size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < sinks.size(); ++i)
    sum += criticality[i] * delays[sinks[i]];
  return sum;
}

}  // namespace

LdrgResult ldrg_screened(const graph::RoutingGraph& initial,
                         const delay::DelayEvaluator& evaluator,
                         const spice::Technology& tech,
                         const ScreenedLdrgOptions& options) {
  if (!initial.is_connected())
    throw std::invalid_argument("ldrg_screened: initial routing must be connected");
  if (options.verify_top_k == 0)
    throw std::invalid_argument("ldrg_screened: verify_top_k must be positive");

  LdrgResult result;
  result.graph = initial;
  result.initial_objective =
      objective(result.graph, evaluator, options.base.criticality);
  result.initial_cost = result.graph.total_wirelength();
  result.final_objective = result.initial_objective;
  result.final_cost = result.initial_cost;

  while (result.steps.size() < options.base.max_added_edges) {
    const double current = result.final_objective;
    const double accept_below =
        current * (1.0 - options.base.min_relative_improvement);

    // Stage 1: rank every absent pair by the moment screen.
    const delay::EdgeCandidateScreener screener(result.graph, tech);
    struct Ranked {
      double score;
      graph::NodeId u, v;
    };
    std::vector<Ranked> ranked;
    for (graph::NodeId u = 0; u < result.graph.node_count(); ++u) {
      for (graph::NodeId v = u + 1; v < result.graph.node_count(); ++v) {
        if (result.graph.has_edge(u, v)) continue;
        ranked.push_back({screened_objective(screener, result.graph, u, v,
                                             options.base.criticality),
                          u, v});
      }
    }
    if (ranked.empty()) break;
    const std::size_t top_k = std::min(options.verify_top_k, ranked.size());
    std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(top_k),
                      ranked.end(),
                      [](const Ranked& a, const Ranked& b) { return a.score < b.score; });

    // Stage 2: verify the top candidates with the accurate oracle.
    double best_objective = accept_below;
    graph::NodeId best_u = graph::kInvalidNode;
    graph::NodeId best_v = graph::kInvalidNode;
    for (std::size_t k = 0; k < top_k; ++k) {
      graph::RoutingGraph trial = result.graph;
      trial.add_edge(ranked[k].u, ranked[k].v);
      const double t = objective(trial, evaluator, options.base.criticality);
      if (t < best_objective) {
        best_objective = t;
        best_u = ranked[k].u;
        best_v = ranked[k].v;
      }
    }
    if (best_u == graph::kInvalidNode) break;

    result.graph.add_edge(best_u, best_v);
    result.final_objective = best_objective;
    result.final_cost = result.graph.total_wirelength();
    result.steps.push_back(
        LdrgStep{best_u, best_v, current, best_objective, result.final_cost});
  }
  return result;
}

}  // namespace ntr::core
