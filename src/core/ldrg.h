#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "core/parallel.h"
#include "delay/evaluator.h"
#include "graph/routing_graph.h"
#include "runtime/stop.h"

namespace ntr::core {

/// One accepted edge addition of the LDRG greedy loop.
struct LdrgStep {
  graph::NodeId u = graph::kInvalidNode;
  graph::NodeId v = graph::kInvalidNode;
  double objective_before = 0.0;  ///< seconds
  double objective_after = 0.0;   ///< seconds
  double cost_after = 0.0;        ///< total wirelength (um) after this step
};

struct LdrgOptions {
  /// Maximum number of extra edges added (the paper reports iterations one
  /// and two separately; unbounded runs terminate on their own, typically
  /// after ~2 iterations).
  std::size_t max_added_edges = std::numeric_limits<std::size_t>::max();

  /// A candidate edge is accepted only if it improves the objective by
  /// more than this fraction -- guards against chasing solver noise.
  double min_relative_improvement = 1e-9;

  /// Wirelength budget: candidates that would push total cost above
  /// max_cost_ratio x the initial routing's cost are never taken. The
  /// paper reports delay improvements *at* their incurred cost; this knob
  /// turns LDRG into the constrained form routers deploy (and sweeps the
  /// delay-cost Pareto front, bench/ext_pareto).
  double max_cost_ratio = std::numeric_limits<double>::infinity();

  /// CSORG objective weights (Section 5.1), indexed like graph.sinks();
  /// empty selects the ORG objective max_i t(n_i).
  std::vector<double> criticality;

  /// Candidate-scan thread count. Results are bit-identical for every
  /// value: candidates are scored independently over statically chunked
  /// index ranges and the winner is reduced by (delay, candidate index),
  /// so the lane count can never change the chosen edge.
  ParallelConfig parallel;

  /// Lets the evaluator stop scoring a candidate as soon as its delay
  /// provably exceeds the best score seen so far (bounded_max_delay). A
  /// pure branch-and-bound cutoff: pruned candidates were never winners,
  /// so the selected edges and reported objectives are unchanged. Only
  /// applies to the ORG (max-delay) objective without an incremental
  /// scorer; disable to force full scoring of every candidate.
  bool bounded_scoring = true;

  /// Cooperative deadline/cancellation. Polled at every round boundary
  /// and every 16 candidates inside each scan lane; when it trips, the
  /// lanes drain cooperatively (the pool joins cleanly) and ldrg unwinds
  /// with NtrError (kTimeout / kCancelled). An un-engaged token (the
  /// default) is one hoisted bool test -- the scan and its result stay
  /// bit-identical.
  runtime::StopToken stop{};
};

struct LdrgResult {
  graph::RoutingGraph graph;
  double initial_objective = 0.0;
  double final_objective = 0.0;
  double initial_cost = 0.0;
  double final_cost = 0.0;
  std::vector<LdrgStep> steps;

  [[nodiscard]] std::size_t added_edges() const { return steps.size(); }
  [[nodiscard]] bool improved() const { return !steps.empty(); }
};

/// The Low Delay Routing Graph algorithm (Figure 4 of the paper): starting
/// from `initial` (an MST, Steiner tree, or ERT -- any connected routing),
/// repeatedly add the node pair whose extra edge minimizes the delay
/// objective, while any candidate still improves it. The delay oracle is
/// pluggable; the paper's reference configuration uses the transient
/// (SPICE-substitute) evaluator.
///
/// When `initial` contains Steiner nodes this is exactly the SLDRG loop of
/// Figure 6: candidate endpoints range over pins and Steiner points alike.
LdrgResult ldrg(const graph::RoutingGraph& initial,
                const delay::DelayEvaluator& evaluator, const LdrgOptions& options = {});

}  // namespace ntr::core
