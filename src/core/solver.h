#pragma once

#include <string>
#include <vector>

#include "core/ldrg.h"
#include "core/parallel.h"
#include "delay/evaluator.h"
#include "graph/net.h"
#include "graph/routing_graph.h"
#include "runtime/stop.h"
#include "spice/technology.h"
#include "steiner/iterated_one_steiner.h"

namespace ntr::core {

/// All routing constructions this library offers, from classical trees to
/// the paper's non-tree routings.
enum class Strategy {
  kMst,          ///< minimum spanning tree (Prim)
  kStar,         ///< shortest-path-tree / source-rooted star
  kSteinerTree,  ///< Iterated 1-Steiner tree
  kErt,          ///< Elmore Routing Tree (paper ref [4])
  kSert,         ///< Steiner ERT
  kLdrg,         ///< LDRG from the MST (the paper's main algorithm, Fig. 4)
  kSldrg,        ///< LDRG from the Steiner tree (Fig. 6)
  kErtLdrg,      ///< LDRG seeded with an ERT (Table 7)
  kH1,           ///< one-simulation source-connection heuristic
  kH2,           ///< Elmore-only source-connection heuristic
  kH3,           ///< pathlength x Elmore / new-edge-length heuristic
};

[[nodiscard]] std::string strategy_name(Strategy s);

struct SolverConfig {
  spice::Technology tech{};
  /// Candidate-evaluation thread count for the LDRG-family strategies.
  /// A non-default value overrides ldrg.parallel, so callers (the CLI's
  /// --threads, the bench harness's NTR_THREADS) can set one knob without
  /// reaching into the per-strategy options. Routing output is
  /// bit-identical for every thread count.
  ParallelConfig parallel{};
  /// Options forwarded to ldrg() for the LDRG-family strategies.
  LdrgOptions ldrg{};
  /// Options forwarded to iterated_one_steiner() for Steiner strategies.
  steiner::SteinerOptions steiner{};
  /// H1 iteration cap.
  std::size_t h1_max_iterations = static_cast<std::size_t>(-1);
  /// Cooperative deadline/cancellation for the whole solve. An engaged
  /// token overrides ldrg.stop (same pattern as `parallel`), is checked
  /// once on entry, and is polled by the LDRG rounds/lanes. Evaluator-side
  /// polling (the transient march) rides in the evaluator's own options.
  /// Trips unwind with NtrError (kTimeout / kCancelled).
  runtime::StopToken stop{};
};

struct Solution {
  Strategy strategy = Strategy::kMst;
  graph::RoutingGraph graph;
  /// Max source-sink delay under `evaluator` (seconds).
  double delay_s = 0.0;
  /// Total wirelength (um).
  double cost_um = 0.0;
};

/// One-call facade: construct a routing for `net` with the requested
/// strategy and measure it with `evaluator`. The evaluator drives both the
/// inner search of the LDRG/H1 strategies and the reported delay, exactly
/// as the paper drives its loop and its tables with SPICE.
Solution solve(const graph::Net& net, Strategy strategy,
               const delay::DelayEvaluator& evaluator, const SolverConfig& config = {});

}  // namespace ntr::core
