#pragma once

#include <cstddef>
#include <vector>

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::core {

/// Result of the one-shot source-connection heuristics H1/H2/H3. The
/// `graph` holds the original tree plus the added source edges; `steps`
/// records each accepted edge (H2/H3 add at most one).
struct HeuristicResult {
  graph::RoutingGraph graph;
  std::vector<LdrgStep> steps;
  double initial_objective = 0.0;  ///< under the heuristic's own evaluator
  double final_objective = 0.0;
};

/// H1: connect the source n_0 to the sink with the longest *simulated*
/// delay; iterate while the accurate evaluator confirms an improvement
/// (the paper observes ~2 productive iterations). One simulation per
/// iteration, versus LDRG's quadratically many.
HeuristicResult h1(const graph::RoutingGraph& tree,
                   const delay::DelayEvaluator& evaluator,
                   std::size_t max_iterations = static_cast<std::size_t>(-1));

/// H2: connect n_0 to the sink with the longest *tree Elmore* delay. No
/// simulation at all; cannot be iterated (the tree Elmore formula is
/// undefined once the graph has a cycle). Requires a tree input.
HeuristicResult h2(const graph::RoutingGraph& tree, const spice::Technology& tech);

/// H3: connect n_0 to the sink maximizing
///     pathlength(n_0 -> sink) * ElmoreDelay(sink) / d(n_0, sink),
/// i.e. prefer sinks that are slow AND far along the tree but *close* in
/// the plane, so the new wire is cheap. No simulation; tree input only.
HeuristicResult h3(const graph::RoutingGraph& tree, const spice::Technology& tech);

}  // namespace ntr::core
