#include "core/parallel.h"

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "check/contracts.h"
#include "core/annotations.h"

namespace ntr::core {

std::size_t ParallelConfig::resolved_threads() const {
  if (num_threads != 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ChunkRange chunk_range(std::size_t n, std::size_t lane, std::size_t lanes) {
  NTR_CHECK(lanes > 0 && lane < lanes);
  const std::size_t base = n / lanes;
  const std::size_t extra = n % lanes;
  const std::size_t begin = lane * base + std::min(lane, extra);
  return ChunkRange{begin, begin + base + (lane < extra ? 1 : 0)};
}

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // workers wait here for a new job
  std::condition_variable done_cv;   // run() waits here for completion
  const std::function<void(std::size_t)>* job NTR_GUARDED_BY(mutex) = nullptr;
  // bumped per job; wakes the workers
  std::uint64_t generation NTR_GUARDED_BY(mutex) = 0;
  // workers still running the current job
  std::size_t pending NTR_GUARDED_BY(mutex) = 0;
  bool shutdown NTR_GUARDED_BY(mutex) = false;
  // First failing lane's exception, by lane order so reruns agree.
  std::size_t failed_lane NTR_GUARDED_BY(mutex) = 0;
  std::exception_ptr failure NTR_GUARDED_BY(mutex);
  std::vector<std::thread> workers;

  void worker_loop(std::size_t lane) {
    std::uint64_t seen = 0;
    for (;;) {
      const std::function<void(std::size_t)>* fn = nullptr;
      {
        std::unique_lock<std::mutex> lock(mutex);
        work_cv.wait(lock, [&] { return shutdown || generation != seen; });
        if (shutdown) return;
        seen = generation;
        fn = job;
      }
      execute(*fn, lane);
      {
        std::lock_guard<std::mutex> lock(mutex);
        if (--pending == 0) done_cv.notify_all();
      }
    }
  }

  void execute(const std::function<void(std::size_t)>& fn, std::size_t lane) {
    try {
      fn(lane);
    } catch (...) {
      // ntr-blocking-in-lane(failure capture on the lane's exception path)
      std::lock_guard<std::mutex> lock(mutex);
      if (!failure || lane < failed_lane) {
        failure = std::current_exception();
        failed_lane = lane;
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t lanes) : impl_(new Impl) {
  const std::size_t workers = lanes > 1 ? lanes - 1 : 0;
  impl_->workers.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    impl_->workers.emplace_back([this, i] { impl_->worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->shutdown = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

std::size_t ThreadPool::lane_count() const { return impl_->workers.size() + 1; }

void ThreadPool::run(const std::function<void(std::size_t)>& fn) {
  {
    // A nested ldrg invocation from an outer lane funnels through here
    // by design; the inner pool is sized 1 in that configuration.
    // ntr-blocking-in-lane(this IS the lane dispatch latch)
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->job = &fn;
    impl_->pending = impl_->workers.size();
    impl_->failure = nullptr;
    impl_->failed_lane = 0;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();
  impl_->execute(fn, 0);  // the calling thread is lane 0
  {
    // ntr-blocking-in-lane(completion barrier of the dispatch latch)
    std::unique_lock<std::mutex> lock(impl_->mutex);
    // ntr-blocking-in-lane(completion barrier of the dispatch latch)
    impl_->done_cv.wait(lock, [&] { return impl_->pending == 0; });
    if (impl_->failure) std::rethrow_exception(impl_->failure);
  }
}

void parallel_chunks(ThreadPool* pool, std::size_t n,
                     const std::function<void(std::size_t, std::size_t,
                                              std::size_t)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->lane_count() <= 1) {
    fn(0, 0, n);
    return;
  }
  const std::size_t lanes = pool->lane_count();
  pool->run([&](std::size_t lane) {
    const ChunkRange r = chunk_range(n, lane, lanes);
    if (!r.empty()) fn(lane, r.begin, r.end);
  });
}

}  // namespace ntr::core
