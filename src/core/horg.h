#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "delay/evaluator.h"
#include "graph/routing_graph.h"

namespace ntr::core {

/// One accepted HORG move.
struct HorgStep {
  enum class Kind { kAddEdge, kWidenEdge } kind = Kind::kAddEdge;
  graph::NodeId u = graph::kInvalidNode;  ///< kAddEdge endpoints
  graph::NodeId v = graph::kInvalidNode;
  graph::EdgeId edge = graph::kInvalidEdge;  ///< kWidenEdge target
  double new_width = 1.0;
  double objective_before = 0.0;
  double objective_after = 0.0;
  double area_after = 0.0;
};

struct HorgOptions {
  /// Discrete widths available to every wire.
  std::vector<double> widths{1.0, 2.0, 3.0, 4.0};
  /// Stop once total wire area exceeds this multiple of the initial area.
  double max_area_ratio = std::numeric_limits<double>::infinity();
  /// CSORG weights, indexed like graph.sinks(); empty = minimize the max.
  std::vector<double> criticality;
  double min_relative_improvement = 1e-9;
  std::size_t max_moves = std::numeric_limits<std::size_t>::max();
};

struct HorgResult {
  graph::RoutingGraph graph;
  double initial_objective = 0.0;
  double final_objective = 0.0;
  double initial_area = 0.0;
  double final_area = 0.0;
  std::vector<HorgStep> steps;
};

/// Joint greedy solver for the paper's HORG formulation (Section 5.3):
/// at each step, evaluate BOTH move families -- adding one absent wire
/// (the ORG move) and widening one existing wire by one notch (the WSORG
/// move) -- and commit the move with the best objective improvement per
/// unit of added wire area. Subsumes ldrg() (widths fixed) and
/// greedy_wire_sizing() (topology fixed); the area-normalized selection
/// is what lets a cheap widening beat a long new wire when both help.
HorgResult horg_greedy(const graph::RoutingGraph& initial,
                       const delay::DelayEvaluator& evaluator,
                       const HorgOptions& options = {});

}  // namespace ntr::core
