#include "core/exhaustive.h"

#include <stdexcept>
#include <utility>

namespace ntr::core {

namespace {

double objective(const graph::RoutingGraph& g, const delay::DelayEvaluator& evaluator,
                 const std::vector<double>& criticality) {
  return criticality.empty() ? evaluator.max_delay(g)
                             : evaluator.weighted_delay(g, criticality);
}

}  // namespace

ExhaustiveOrgResult exhaustive_org_augmentation(
    const graph::RoutingGraph& initial, const delay::DelayEvaluator& evaluator,
    const ExhaustiveOrgOptions& options) {
  if (!initial.is_connected())
    throw std::invalid_argument("exhaustive_org: initial routing must be connected");

  std::vector<std::pair<graph::NodeId, graph::NodeId>> absent;
  for (graph::NodeId u = 0; u < initial.node_count(); ++u)
    for (graph::NodeId v = u + 1; v < initial.node_count(); ++v)
      if (!initial.has_edge(u, v)) absent.emplace_back(u, v);

  ExhaustiveOrgResult best;
  best.graph = initial;
  best.objective = objective(initial, evaluator, options.criticality);
  best.evaluated = 1;

  // Depth-first enumeration of subsets up to the size cap. `start` makes
  // each subset visited exactly once (combinations, not permutations).
  std::vector<std::size_t> chosen;
  const auto recurse = [&](auto&& self, graph::RoutingGraph& current,
                           std::size_t start) -> void {
    if (chosen.size() >= options.max_extra_edges) return;
    for (std::size_t i = start; i < absent.size(); ++i) {
      graph::RoutingGraph next = current;
      next.add_edge(absent[i].first, absent[i].second);
      chosen.push_back(i);
      const double t = objective(next, evaluator, options.criticality);
      ++best.evaluated;
      if (t < best.objective) {
        best.objective = t;
        best.graph = next;
        best.extra_edges = chosen.size();
      }
      self(self, next, i + 1);
      chosen.pop_back();
    }
  };
  graph::RoutingGraph root = initial;
  recurse(recurse, root, 0);
  return best;
}

}  // namespace ntr::core
