#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "graph/routing_graph.h"
#include "linalg/dense_matrix.h"
#include "spice/technology.h"

namespace ntr::delay {

/// Counters describing how an IncrementalElmore cache served its queries.
/// `delta_evaluations` are O(n) Sherman-Morrison answers off the cached
/// factorization; `exact_fallbacks` are full dense re-solves forced by an
/// ill-conditioned update; `rebuilds` counts cache (re)constructions, one
/// per attached graph revision.
struct IncrementalElmoreStats {
  std::size_t delta_evaluations = 0;
  std::size_t exact_fallbacks = 0;
  std::size_t rebuilds = 0;

  /// Fraction of candidate queries answered by the O(n) delta path.
  [[nodiscard]] double hit_rate() const {
    const std::size_t total = delta_evaluations + exact_fallbacks;
    return total == 0 ? 1.0 : static_cast<double>(delta_evaluations) /
                                  static_cast<double>(total);
  }
};

/// Incremental graph-Elmore engine for LDRG's inner question: "what are
/// the per-node Elmore delays of G + e_uv?" asked for every absent pair
/// (u,v) of the current routing.
///
/// What is cached, in circuit terms: the transfer-resistance matrix
/// R = G^{-1} of the grounded conductance system and the base moment
/// vector m1 = R C. On a tree, R(i,k) is exactly the resistance of the
/// shared source path of nodes i and k (plus the driver), and
/// m1_i = sum_k R(i,k) c_k is the classical "path resistance times
/// downstream capacitance" Elmore sum -- so this cache is the general-
/// graph form of the per-node subtree-capacitance / source-path-resistance
/// tables a tree-Elmore engine would keep.
///
/// A candidate wire (u,v) is a rank-1 conductance update
/// G' = G + g_e w w^T (w = e_u - e_v) plus two capacitance entries, so by
/// Sherman-Morrison the updated moments cost O(n) per candidate instead of
/// an O(n^3) re-factorization. When the update is too ill-conditioned for
/// the delta to be trustworthy (degenerate zero-length shorts driving
/// g_e * w^T R w beyond kDeltaConditionLimit), the engine transparently
/// falls back to an exact dense solve of the trial graph.
///
/// Cache invalidation: the cache is valid for exactly one graph revision.
/// Inserting an edge (or node) into the routing invalidates it; call
/// refresh() with the mutated graph before scoring further candidates.
/// matches() tests the structural signature (node count, edge count, total
/// wirelength) that every LDRG mutation changes.
///
/// Thread safety: candidate_delays() is const and safe to call from many
/// threads concurrently (the stats counters are atomic); build/refresh
/// must be externally serialized, as with any mutation.
class IncrementalElmore {
 public:
  /// Builds the cache; O(n^3). Throws std::invalid_argument if g is not
  /// connected.
  IncrementalElmore(const graph::RoutingGraph& g, const spice::Technology& tech);

  /// True when the cache was built against a graph with this structural
  /// signature (node count, edge count, total wirelength).
  [[nodiscard]] bool matches(const graph::RoutingGraph& g) const;

  /// Rebuilds the cache against `g` after a mutation; counts a rebuild.
  void refresh(const graph::RoutingGraph& g);

  /// Per-node Elmore delays of the attached graph + edge (u,v); O(n) on
  /// the delta path. (u,v) must be distinct in-range nodes; querying an
  /// already-present edge is legal (the result reflects a doubled wire).
  [[nodiscard]] std::vector<double> candidate_delays(graph::NodeId u,
                                                     graph::NodeId v) const;

  /// The same computation via a full assemble-and-solve of the trial
  /// graph, bypassing the cache. Exposed so tests (and the fallback path)
  /// can compare delta against ground truth.
  [[nodiscard]] std::vector<double> candidate_delays_exact(graph::NodeId u,
                                                           graph::NodeId v) const;

  /// Base (no added edge) per-node Elmore delays of the attached graph.
  [[nodiscard]] const std::vector<double>& base_delays() const { return m1_; }
  [[nodiscard]] double base_max_delay() const;

  /// Snapshot of the query counters (monotone across refresh()).
  [[nodiscard]] IncrementalElmoreStats stats() const;

  /// Delta updates whose g_e * w^T G^{-1} w exceed this are answered by
  /// the exact path: past ~1e12 the Sherman-Morrison subtraction cancels
  /// most mantissa bits and the 1e-12 agreement contract would be at risk.
  static constexpr double kDeltaConditionLimit = 1e12;

 private:
  void build(const graph::RoutingGraph& g);

  const graph::RoutingGraph* g_ = nullptr;
  spice::Technology tech_;
  std::vector<graph::NodeId> sinks_;
  linalg::DenseMatrix inverse_;  ///< transfer resistances R = G^{-1}
  std::vector<double> cap_;      ///< diagonal C (wire halves + sink loads)
  std::vector<double> m1_;       ///< base moments R C
  std::size_t node_count_ = 0;
  std::size_t edge_count_ = 0;
  double wirelength_ = 0.0;

  mutable std::atomic<std::size_t> delta_evaluations_{0};
  mutable std::atomic<std::size_t> exact_fallbacks_{0};
  std::size_t rebuilds_ = 0;
};

}  // namespace ntr::delay
