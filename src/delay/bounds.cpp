#include "delay/bounds.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "delay/moments.h"

namespace ntr::delay {

double crossing_upper_bound(double m1, double threshold) {
  if (threshold <= 0.0 || threshold >= 1.0)
    throw std::invalid_argument("crossing_upper_bound: threshold must be in (0,1)");
  return m1 / (1.0 - threshold);
}

namespace {

/// max over window sizes of the tail-moment lower bound on u(t):
///   u(t) >= (m1 - t - m2/s) / (s - t)  over s > t,
/// whose maximizer has the closed form s* = (m2 + sqrt(m2^2 - A m2 t)) / A
/// with A = m1 - t (the discriminant is nonnegative because m1 <= t + m2/t
/// holds for every monotone response).
double uncharged_lower_bound(double m1, double m2, double t) {
  const double a = m1 - t;
  if (a <= 0.0 || m2 <= 0.0) return 0.0;
  const double disc = m2 * m2 - a * m2 * t;
  if (disc < 0.0) return 0.0;  // numerically impossible; be safe
  const double s = (m2 + std::sqrt(disc)) / a;
  if (s <= t) return 0.0;
  const double bound = (a - m2 / s) / (s - t);
  return std::clamp(bound, 0.0, 1.0);
}

}  // namespace

double crossing_lower_bound(double m1, double m2, double threshold) {
  if (threshold <= 0.0 || threshold >= 1.0)
    throw std::invalid_argument("crossing_lower_bound: threshold must be in (0,1)");
  const double target = 1.0 - threshold;  // crossing happens when u drops to this
  if (uncharged_lower_bound(m1, m2, 0.0) <= target) return 0.0;  // vacuous

  // u's lower bound decreases in t; bisect for the largest t where it
  // still exceeds the target (the response cannot have crossed by then).
  double lo = 0.0;
  double hi = crossing_upper_bound(m1, threshold);
  for (int iter = 0; iter < 100; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (uncharged_lower_bound(m1, m2, mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

DelayBounds delay_bounds(const graph::RoutingGraph& g, const spice::Technology& tech,
                         double threshold) {
  const MomentAnalysis moments = moment_analysis(g, tech);
  DelayBounds bounds;
  bounds.lower_s.reserve(moments.m1.size());
  bounds.upper_s.reserve(moments.m1.size());
  for (std::size_t i = 0; i < moments.m1.size(); ++i) {
    bounds.lower_s.push_back(
        crossing_lower_bound(moments.m1[i], moments.m2[i], threshold));
    bounds.upper_s.push_back(crossing_upper_bound(moments.m1[i], threshold));
  }
  return bounds;
}

}  // namespace ntr::delay
