#include "delay/elmore.h"

#include <algorithm>

namespace ntr::delay {

namespace {

double edge_capacitance(const graph::GraphEdge& e, const spice::Technology& tech) {
  return tech.wire_capacitance(e.length, e.width);
}

double edge_resistance(const graph::GraphEdge& e, const spice::Technology& tech) {
  return tech.wire_resistance(e.length, e.width);
}

double node_load(const graph::GraphNode& n, const spice::Technology& tech) {
  return n.kind == graph::NodeKind::kSink ? tech.sink_capacitance_f : 0.0;
}

}  // namespace

double tree_total_capacitance(const graph::RoutingGraph& g,
                              const spice::Technology& tech) {
  double total = 0.0;
  for (const graph::GraphEdge& e : g.edges()) total += edge_capacitance(e, tech);
  for (const graph::GraphNode& n : g.nodes()) total += node_load(n, tech);
  return total;
}

std::vector<double> elmore_node_delays(const graph::RoutingGraph& g,
                                       const graph::RootedTree& tree,
                                       const spice::Technology& tech) {
  const std::size_t n = g.node_count();

  // Subtree capacitance C_i: accumulate bottom-up (reverse preorder).
  std::vector<double> subtree_cap(n, 0.0);
  for (graph::NodeId u = 0; u < n; ++u) subtree_cap[u] = node_load(g.node(u), tech);
  for (auto it = tree.preorder.rbegin(); it != tree.preorder.rend(); ++it) {
    const graph::NodeId u = *it;
    const graph::NodeId p = tree.parent[u];
    if (p == graph::kInvalidNode) continue;
    subtree_cap[p] +=
        subtree_cap[u] + edge_capacitance(g.edge(tree.parent_edge[u]), tech);
  }

  // Delays top-down: each node adds its parent edge's r * (c/2 + C_subtree).
  std::vector<double> delay(n, 0.0);
  const double driver_term = tech.driver_resistance_ohm * subtree_cap[tree.root];
  for (const graph::NodeId u : tree.preorder) {
    const graph::NodeId p = tree.parent[u];
    if (p == graph::kInvalidNode) {
      delay[u] = driver_term;
      continue;
    }
    const graph::GraphEdge& e = g.edge(tree.parent_edge[u]);
    delay[u] = delay[p] + edge_resistance(e, tech) *
                              (edge_capacitance(e, tech) / 2.0 + subtree_cap[u]);
  }
  return delay;
}

std::vector<double> elmore_node_delays(const graph::RoutingGraph& g,
                                       const spice::Technology& tech) {
  const graph::RootedTree tree = graph::root_tree(g, g.source());
  return elmore_node_delays(g, tree, tech);
}

double elmore_tree_delay(const graph::RoutingGraph& g, const spice::Technology& tech) {
  const std::vector<double> delays = elmore_node_delays(g, tech);
  double worst = 0.0;
  for (const graph::NodeId s : g.sinks()) worst = std::max(worst, delays[s]);
  return worst;
}

}  // namespace ntr::delay
