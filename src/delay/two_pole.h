#pragma once

#include <vector>

#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::delay {

/// AWE-style two-pole reduced-order model of one node's step response,
/// matched to the first three response moments (m1, m2, m3). Where the
/// D2M metric gives only a 50% number, this gives the whole waveform
/// v(t)/v_inf, so arbitrary thresholds (and slews) can be evaluated
/// without transient simulation.
struct TwoPoleModel {
  /// v(t)/v_inf = 1 - k1 e^{-t/tau1} - k2 e^{-t/tau2} (real-pole case) or
  /// the equivalent damped-cosine form when the fitted poles are complex.
  double tau1 = 0.0, tau2 = 0.0;  ///< time constants (tau1 >= tau2 > 0)
  double k1 = 0.0, k2 = 0.0;      ///< residues, k1 + k2 = 1
  bool real_poles = true;
  /// Complex case: poles sigma +- j*omega, response
  /// 1 - e^{-sigma t} (cos(omega t) + (c/omega) sin(omega t)).
  double sigma = 0.0, omega = 0.0, c = 0.0;

  /// Normalized response value in [0, ~1].
  [[nodiscard]] double response(double t_s) const;

  /// First time the response reaches `fraction` (bisection on the model;
  /// the real-pole response is monotone, the complex one is bracketed by
  /// its first crossing).
  [[nodiscard]] double crossing(double fraction) const;
};

/// Fits a two-pole model per node of a routing graph from three moment
/// solves. Falls back to a single-pole model (tau = m1) for nodes whose
/// moment sequence is numerically degenerate.
std::vector<TwoPoleModel> two_pole_models(const graph::RoutingGraph& g,
                                          const spice::Technology& tech);

}  // namespace ntr::delay
