#pragma once

#include <vector>

#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::delay {

/// Provable per-node bounds on the threshold-crossing time of the step
/// response, from the first two response moments (two SPD solves) -- the
/// role Rubinstein-Penfield-Horowitz bounds (paper ref [19]) play for RC
/// trees, here derived for arbitrary RC routing graphs.
///
/// Let u(t) = 1 - v(t)/v_inf be the normalized *uncharged* fraction at a
/// node: u is non-increasing, u(0) = 1, and the computed moments give
/// m1 = integral of u dt (the Elmore delay) and m2 = integral of t*u dt.
/// Two elementary facts bound the crossing time t(f) where v first
/// reaches f*v_inf (i.e. u first reaches 1-f):
///
///  - Markov (upper): t * u(t) <= integral_0^t u ds <= m1, so
///        u(t) <= m1 / t, hence t(f) <= m1 / (1 - f).
///  - Tail-moment (lower): for any window T > 0,
///        u(t) >= (1/T) * integral_t^{t+T} u ds
///              = (1/T) * [ (m1 - integral_0^t u) - integral_{t+T}^inf u ]
///        with integral_0^t u <= t and integral_x^inf u <= m2 / x, so
///        u(t) >= max_T (m1 - t - m2/(t+T)) / T.
///    The crossing cannot happen while this lower bound still exceeds
///    1 - f, which yields a computable lower bound on t(f).
///
/// Both arguments need only monotonicity of the step response (true for
/// grounded-capacitor RC networks driven by a step), not a tree topology.
struct DelayBounds {
  std::vector<double> lower_s;  ///< per node, 0 when the bound is vacuous
  std::vector<double> upper_s;  ///< per node
};

/// Bounds for threshold fraction `threshold` (default: the 50% delay the
/// paper measures). Throws std::invalid_argument for disconnected graphs
/// or thresholds outside (0,1).
DelayBounds delay_bounds(const graph::RoutingGraph& g, const spice::Technology& tech,
                         double threshold = 0.5);

/// Scalar helpers on precomputed moments (exposed for testing):
/// upper bound m1/(1-f).
double crossing_upper_bound(double m1, double threshold);
/// largest t at which the tail-moment argument still forces u(t) > 1-f.
double crossing_lower_bound(double m1, double m2, double threshold);

}  // namespace ntr::delay
