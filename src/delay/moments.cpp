#include "delay/moments.h"

#include <cmath>
#include <stdexcept>

#include "linalg/sparse_cholesky.h"

namespace ntr::delay {

namespace {

constexpr double kShortResistanceOhm = 1e-6;  // matches spice::build_netlist

}  // namespace

double wire_conductance(double length_um, double width,
                        const spice::Technology& tech) {
  const double r = length_um > 0.0 ? tech.wire_resistance(length_um, width)
                                   : kShortResistanceOhm;
  return 1.0 / r;
}

GroundedSystem assemble_grounded_system(const graph::RoutingGraph& g,
                                        const spice::Technology& tech) {
  if (!g.is_connected())
    throw std::invalid_argument("moment analysis: routing graph must be connected");
  const std::size_t n = g.node_count();
  GroundedSystem sys{linalg::DenseMatrix(n, n), std::vector<double>(n, 0.0)};

  for (const graph::GraphEdge& e : g.edges()) {
    const double conductance = wire_conductance(e.length, e.width, tech);
    sys.conductance(e.u, e.u) += conductance;
    sys.conductance(e.v, e.v) += conductance;
    sys.conductance(e.u, e.v) -= conductance;
    sys.conductance(e.v, e.u) -= conductance;
    const double c_half = tech.wire_capacitance(e.length, e.width) / 2.0;
    sys.capacitance[e.u] += c_half;
    sys.capacitance[e.v] += c_half;
  }
  // Norton-transformed driver: with the ideal step shorted, the driver
  // resistance grounds the source node.
  sys.conductance(g.source(), g.source()) += 1.0 / tech.driver_resistance_ohm;
  for (graph::NodeId u = 0; u < n; ++u)
    if (g.node(u).kind == graph::NodeKind::kSink)
      sys.capacitance[u] += tech.sink_capacitance_f;
  return sys;
}

linalg::CsrMatrix grounded_conductance_csr(const graph::RoutingGraph& g,
                                           const spice::Technology& tech) {
  if (!g.is_connected())
    throw std::invalid_argument("moment analysis: routing graph must be connected");
  const std::size_t n = g.node_count();
  linalg::TripletBuilder builder(n, n);
  for (const graph::GraphEdge& e : g.edges()) {
    const double conductance = wire_conductance(e.length, e.width, tech);
    builder.add(e.u, e.u, conductance);
    builder.add(e.v, e.v, conductance);
    builder.add(e.u, e.v, -conductance);
    builder.add(e.v, e.u, -conductance);
  }
  builder.add(g.source(), g.source(), 1.0 / tech.driver_resistance_ohm);
  return linalg::CsrMatrix(builder);
}

namespace {

/// Diagonal capacitance vector (shared by both solver paths).
std::vector<double> capacitance_vector(const graph::RoutingGraph& g,
                                       const spice::Technology& tech) {
  std::vector<double> cap(g.node_count(), 0.0);
  for (const graph::GraphEdge& e : g.edges()) {
    const double c_half = tech.wire_capacitance(e.length, e.width) / 2.0;
    cap[e.u] += c_half;
    cap[e.v] += c_half;
  }
  for (graph::NodeId u = 0; u < g.node_count(); ++u)
    if (g.node(u).kind == graph::NodeKind::kSink)
      cap[u] += tech.sink_capacitance_f;
  return cap;
}

MomentAnalysis moments_sparse(const graph::RoutingGraph& g,
                              const spice::Technology& tech, bool want_m2) {
  const linalg::EnvelopeCholesky chol(grounded_conductance_csr(g, tech));
  const std::vector<double> cap = capacitance_vector(g, tech);
  MomentAnalysis result;
  result.m1 = chol.solve(cap);
  if (want_m2) {
    std::vector<double> c_m1(cap.size());
    for (std::size_t i = 0; i < cap.size(); ++i) c_m1[i] = cap[i] * result.m1[i];
    result.m2 = chol.solve(c_m1);
  }
  return result;
}

}  // namespace

MomentAnalysis moment_analysis(const graph::RoutingGraph& g,
                               const spice::Technology& tech) {
  if (g.node_count() > kDenseMomentNodeLimit)
    return moments_sparse(g, tech, /*want_m2=*/true);
  const GroundedSystem sys = assemble_grounded_system(g, tech);
  const linalg::CholeskyFactorization chol(sys.conductance);
  MomentAnalysis result;
  result.m1 = chol.solve(sys.capacitance);
  std::vector<double> c_m1(sys.capacitance.size());
  for (std::size_t i = 0; i < c_m1.size(); ++i)
    c_m1[i] = sys.capacitance[i] * result.m1[i];
  result.m2 = chol.solve(c_m1);
  return result;
}

std::vector<double> graph_elmore_delays(const graph::RoutingGraph& g,
                                        const spice::Technology& tech) {
  if (g.node_count() > kDenseMomentNodeLimit)
    return moments_sparse(g, tech, /*want_m2=*/false).m1;
  const GroundedSystem sys = assemble_grounded_system(g, tech);
  const linalg::CholeskyFactorization chol(sys.conductance);
  return chol.solve(sys.capacitance);
}

std::vector<double> d2m_delays(const graph::RoutingGraph& g,
                               const spice::Technology& tech) {
  const MomentAnalysis m = moment_analysis(g, tech);
  std::vector<double> d(m.m1.size(), 0.0);
  constexpr double kLn2 = 0.6931471805599453;
  for (std::size_t i = 0; i < d.size(); ++i) {
    if (m.m2[i] > 0.0) {
      d[i] = kLn2 * m.m1[i] * m.m1[i] / std::sqrt(m.m2[i]);
    } else {
      d[i] = kLn2 * m.m1[i];  // degenerate: fall back to single-pole estimate
    }
  }
  return d;
}

}  // namespace ntr::delay
