#include "delay/screener.h"

#include <algorithm>
#include <stdexcept>

#include "delay/moments.h"

namespace ntr::delay {

EdgeCandidateScreener::EdgeCandidateScreener(const graph::RoutingGraph& g,
                                             const spice::Technology& tech)
    : g_(g), tech_(tech), sinks_(g.sinks()) {
  const GroundedSystem sys = assemble_grounded_system(g, tech);
  cap_ = sys.capacitance;

  const std::size_t n = g.node_count();
  const linalg::CholeskyFactorization chol(sys.conductance);

  // Explicit inverse: n back-substitutions. The screener amortizes this
  // single O(n^3) setup over the O(n^2) candidate queries of one LDRG
  // round.
  inverse_ = linalg::DenseMatrix(n, n);
  std::vector<double> unit(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    unit[col] = 1.0;
    const linalg::Vector x = chol.solve(unit);
    unit[col] = 0.0;
    for (std::size_t row = 0; row < n; ++row) inverse_(row, col) = x[row];
  }
  m1_ = inverse_.multiply(cap_);
}

std::vector<double> EdgeCandidateScreener::screened_delays(graph::NodeId u,
                                                           graph::NodeId v) const {
  const std::size_t n = g_.node_count();
  if (u >= n || v >= n || u == v)
    throw std::invalid_argument("screened_delays: invalid node pair");

  const double length = geom::manhattan_distance(g_.node(u).pos, g_.node(v).pos);
  const double g_e = wire_conductance(length, 1.0, tech_);
  const double c_half = tech_.wire_capacitance(length, 1.0) / 2.0;

  // y = G^{-1} (e_u - e_v); columns of the symmetric inverse.
  // New moments via Sherman-Morrison:
  //   m1' = X c' - g_e * y * (y . c') / (1 + g_e * (y_u - y_v))
  // with X c' = m1 + c_half * (X e_u + X e_v).
  std::vector<double> result(n);
  double y_dot_cprime = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double y_i = inverse_(i, u) - inverse_(i, v);
    const double xcprime_i = m1_[i] + c_half * (inverse_(i, u) + inverse_(i, v));
    result[i] = xcprime_i;  // temporarily X c'
    const double cprime_i = cap_[i] + (i == u || i == v ? c_half : 0.0);
    y_dot_cprime += y_i * cprime_i;
  }
  const double y_u = inverse_(u, u) - inverse_(u, v);
  const double y_v = inverse_(v, u) - inverse_(v, v);
  const double denom = 1.0 + g_e * (y_u - y_v);
  const double scale = g_e * y_dot_cprime / denom;
  for (std::size_t i = 0; i < n; ++i) {
    const double y_i = inverse_(i, u) - inverse_(i, v);
    result[i] -= scale * y_i;
  }
  return result;
}

double EdgeCandidateScreener::screened_max_delay(graph::NodeId u,
                                                 graph::NodeId v) const {
  const std::vector<double> delays = screened_delays(u, v);
  double worst = 0.0;
  for (const graph::NodeId s : sinks_) worst = std::max(worst, delays[s]);
  return worst;
}

double EdgeCandidateScreener::base_max_delay() const {
  double worst = 0.0;
  for (const graph::NodeId s : sinks_) worst = std::max(worst, m1_[s]);
  return worst;
}

}  // namespace ntr::delay
