#include "delay/screener.h"

#include <algorithm>

namespace ntr::delay {

EdgeCandidateScreener::EdgeCandidateScreener(const graph::RoutingGraph& g,
                                             const spice::Technology& tech)
    : g_(g), engine_(g, tech) {}

std::vector<double> EdgeCandidateScreener::screened_delays(graph::NodeId u,
                                                           graph::NodeId v) const {
  return engine_.candidate_delays(u, v);
}

double EdgeCandidateScreener::screened_max_delay(graph::NodeId u,
                                                 graph::NodeId v) const {
  const std::vector<double> delays = screened_delays(u, v);
  double worst = 0.0;
  for (const graph::NodeId s : g_.sinks()) worst = std::max(worst, delays[s]);
  return worst;
}

}  // namespace ntr::delay
