#include "delay/two_pole.h"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "delay/moments.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse_cholesky.h"

namespace ntr::delay {

double TwoPoleModel::response(double t_s) const {
  if (t_s <= 0.0) return 0.0;
  if (real_poles) {
    return 1.0 - k1 * std::exp(-t_s / tau1) - k2 * std::exp(-t_s / tau2);
  }
  return 1.0 - std::exp(-sigma * t_s) *
                   (std::cos(omega * t_s) + (c / omega) * std::sin(omega * t_s));
}

double TwoPoleModel::crossing(double fraction) const {
  if (fraction <= 0.0 || fraction >= 1.0)
    throw std::invalid_argument("TwoPoleModel::crossing: fraction must be in (0,1)");
  const double scale = real_poles ? tau1 : 1.0 / sigma;

  // Bracket the first crossing by coarse forward marching (handles the
  // non-monotone complex-pole case), then bisect.
  double lo = 0.0;
  double hi = 0.0;
  const double step = scale / 64.0;
  for (double t = step; t < 200.0 * scale; t += step) {
    if (response(t) >= fraction) {
      hi = t;
      lo = t - step;
      break;
    }
  }
  if (hi == 0.0) return 200.0 * scale;  // never reached (degenerate model)
  for (int iter = 0; iter < 80; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (response(mid) >= fraction) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return 0.5 * (lo + hi);
}

namespace {

TwoPoleModel single_pole(double m1) {
  TwoPoleModel model;
  model.real_poles = true;
  model.tau1 = m1 > 0.0 ? m1 : 1e-15;
  model.tau2 = model.tau1 * 1e-6;
  model.k1 = 1.0;
  model.k2 = 0.0;
  return model;
}

/// Pade [1/2] fit from the first three moments; falls back to a single
/// pole when the denominator is not strictly stable.
TwoPoleModel fit(double m1, double m2, double m3) {
  const double denom = m2 - m1 * m1;
  if (m1 <= 0.0 || std::abs(denom) < 1e-12 * m1 * m1) return single_pole(m1);
  const double b1 = (m3 - m1 * m2) / denom;
  const double b2 = b1 * m1 - m2;
  if (b1 <= 0.0 || b2 <= 0.0) return single_pole(m1);

  const double disc = b1 * b1 - 4.0 * b2;
  const double a1 = b1 - m1;  // numerator coefficient of the [1/2] Pade

  TwoPoleModel model;
  if (disc >= 0.0) {
    // Real poles p = (-b1 +- sqrt(disc)) / (2 b2), both negative.
    const double root = std::sqrt(disc);
    const double p1 = (-b1 + root) / (2.0 * b2);  // slow pole (closer to 0)
    const double p2 = (-b1 - root) / (2.0 * b2);
    if (p1 >= 0.0 || p2 >= 0.0 || p1 == p2) return single_pole(m1);
    // Residues of H(s)/s = (1 + a1 s)/(s (1 + b1 s + b2 s^2)) at p_i:
    // r_i = (1 + a1 p_i) / (p_i (b1 + 2 b2 p_i)).
    const double r1 = (1.0 + a1 * p1) / (p1 * (b1 + 2.0 * b2 * p1));
    const double r2 = (1.0 + a1 * p2) / (p2 * (b1 + 2.0 * b2 * p2));
    model.real_poles = true;
    model.tau1 = -1.0 / p1;
    model.tau2 = -1.0 / p2;
    model.k1 = -r1;
    model.k2 = -r2;
  } else {
    const std::complex<double> p(-b1 / (2.0 * b2), std::sqrt(-disc) / (2.0 * b2));
    const std::complex<double> r =
        (1.0 + a1 * p) / (p * (b1 + 2.0 * b2 * p));
    model.real_poles = false;
    model.sigma = -p.real();
    model.omega = p.imag();
    // v(t) = 1 + 2 Re[r e^{pt}] = 1 - e^{-sigma t}(cos wt + (c/w) sin wt)
    // with 2 Re r = -1 (v(0)=0) and c = 2 * Im r * omega ... derived via
    // -2 Im r = c / omega.
    model.c = -2.0 * r.imag() * model.omega;
    if (model.sigma <= 0.0) return single_pole(m1);
  }
  return model;
}

}  // namespace

std::vector<TwoPoleModel> two_pole_models(const graph::RoutingGraph& g,
                                          const spice::Technology& tech) {
  // Three moment solves: m1 = A c, m2 = A C m1, m3 = A C m2 with
  // A = G^{-1} (dense or sparse path by size, like moment_analysis).
  const GroundedSystem sys = assemble_grounded_system(g, tech);
  const std::size_t n = sys.capacitance.size();
  std::vector<double> m1, m2, m3;
  const auto scale_by_cap = [&](const std::vector<double>& v) {
    std::vector<double> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = sys.capacitance[i] * v[i];
    return out;
  };
  if (n > kDenseMomentNodeLimit) {
    const linalg::EnvelopeCholesky chol(grounded_conductance_csr(g, tech));
    m1 = chol.solve(sys.capacitance);
    m2 = chol.solve(scale_by_cap(m1));
    m3 = chol.solve(scale_by_cap(m2));
  } else {
    const linalg::CholeskyFactorization chol(sys.conductance);
    m1 = chol.solve(sys.capacitance);
    m2 = chol.solve(scale_by_cap(m1));
    m3 = chol.solve(scale_by_cap(m2));
  }

  std::vector<TwoPoleModel> models;
  models.reserve(n);
  for (std::size_t i = 0; i < n; ++i) models.push_back(fit(m1[i], m2[i], m3[i]));
  return models;
}

}  // namespace ntr::delay
