#pragma once

#include <vector>

#include "graph/routing_graph.h"
#include "linalg/dense_matrix.h"
#include "linalg/sparse.h"
#include "spice/technology.h"

namespace ntr::delay {

/// First and second moments of the step response at every routing-graph
/// node, computed directly from the graph (each wire as one lumped pi,
/// which matches the distributed first moment exactly; see DESIGN.md).
///
/// m1 is the *graph Elmore delay*: the extension of Elmore delay to
/// arbitrary (cyclic) topologies via one SPD solve G m1 = C 1, in the
/// spirit of Chan-Karplus tree/link partitioning that the paper cites as
/// the way to generalize Elmore beyond trees.
struct MomentAnalysis {
  std::vector<double> m1;  ///< per-node Elmore delay (seconds)
  std::vector<double> m2;  ///< per-node second moment (seconds^2)
};

/// Throws std::invalid_argument when the graph is not connected (the
/// conductance matrix would be singular).
MomentAnalysis moment_analysis(const graph::RoutingGraph& g,
                               const spice::Technology& tech);

/// The grounded node system behind the moment computations: SPD
/// conductance matrix G (wire conductances + the Norton-transformed
/// driver at the source) and the diagonal capacitance vector C (half of
/// each wire cap at either endpoint + sink loads). Exposed for engines
/// that build on the same electrical model (the candidate screener, delay
/// bounds, tests).
struct GroundedSystem {
  linalg::DenseMatrix conductance;
  std::vector<double> capacitance;
};

/// Effective conductance of a wire of the given length/width; degenerate
/// zero-length wires get the same numerical short as the netlist builder.
double wire_conductance(double length_um, double width, const spice::Technology& tech);

GroundedSystem assemble_grounded_system(const graph::RoutingGraph& g,
                                        const spice::Technology& tech);

/// The same conductance matrix in CSR form (for the sparse solver path).
linalg::CsrMatrix grounded_conductance_csr(const graph::RoutingGraph& g,
                                           const spice::Technology& tech);

/// Node count above which moment_analysis / graph_elmore_delays switch
/// from the dense Cholesky to the RCM + envelope-Cholesky sparse path.
/// Routing-graph conductance matrices are near-planar and low-degree, so
/// the sparse path wins quickly (see bench/ablation_sparse_scaling).
inline constexpr std::size_t kDenseMomentNodeLimit = 320;

/// Per-node Elmore delay of an arbitrary routing graph (m1 only).
std::vector<double> graph_elmore_delays(const graph::RoutingGraph& g,
                                        const spice::Technology& tech);

/// D2M two-pole delay metric of Alpert et al.: ln(2) * m1^2 / sqrt(m2).
/// A substantially better 50%-threshold estimate than raw Elmore, still
/// requiring only two SPD solves.
std::vector<double> d2m_delays(const graph::RoutingGraph& g,
                               const spice::Technology& tech);

}  // namespace ntr::delay
