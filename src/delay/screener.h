#pragma once

#include <vector>

#include "delay/incremental_elmore.h"
#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::delay {

/// Fast what-if analysis for LDRG's inner question: "what is the Elmore
/// delay of G + e_uv, for every absent pair (u,v)?"
///
/// A thin facade over delay::IncrementalElmore, which owns the
/// Sherman-Morrison delta math: screening ALL O(n^2) candidates costs the
/// same as ONE dense solve, which is what makes screened LDRG
/// (core/ldrg_screened.h) practical on large nets. Kept as a separate
/// type so screening call sites read as "screener", and so the screener
/// can grow screening-specific policy without touching the cache.
class EdgeCandidateScreener {
 public:
  /// Precomputes G^{-1} and the base moments; O(n^3). Throws
  /// std::invalid_argument if g is not connected.
  EdgeCandidateScreener(const graph::RoutingGraph& g, const spice::Technology& tech);

  /// Per-node Elmore delays of the routing with edge (u,v) added; O(n).
  /// (u,v) must be distinct existing nodes; an already-present edge is
  /// legal to query (the result then reflects a doubled wire).
  [[nodiscard]] std::vector<double> screened_delays(graph::NodeId u,
                                                    graph::NodeId v) const;

  /// max-over-sinks of screened_delays; O(n).
  [[nodiscard]] double screened_max_delay(graph::NodeId u, graph::NodeId v) const;

  /// Base (no added edge) per-node Elmore delays.
  [[nodiscard]] const std::vector<double>& base_delays() const {
    return engine_.base_delays();
  }
  [[nodiscard]] double base_max_delay() const { return engine_.base_max_delay(); }

  /// The underlying delta engine (for stats and shared reuse).
  [[nodiscard]] const IncrementalElmore& engine() const { return engine_; }

 private:
  const graph::RoutingGraph& g_;
  IncrementalElmore engine_;
};

}  // namespace ntr::delay
