#pragma once

#include <vector>

#include "graph/routing_graph.h"
#include "linalg/dense_matrix.h"
#include "spice/technology.h"

namespace ntr::delay {

/// Fast what-if analysis for LDRG's inner question: "what is the Elmore
/// delay of G + e_uv, for every absent pair (u,v)?"
///
/// Adding one wire is a rank-1 conductance update G' = G + g w w^T
/// (w = e_u - e_v) plus two capacitance entries, so by Sherman-Morrison
/// the new first-moment vector is available in O(n) per candidate once
/// G^{-1} is precomputed -- versus O(n^3) for a fresh factorization.
/// Screening ALL O(n^2) candidates then costs the same as ONE dense
/// solve, which is what makes screened LDRG (core/ldrg_screened.h)
/// practical on large nets.
class EdgeCandidateScreener {
 public:
  /// Precomputes G^{-1} and the base moments; O(n^3). Throws
  /// std::invalid_argument if g is not connected.
  EdgeCandidateScreener(const graph::RoutingGraph& g, const spice::Technology& tech);

  /// Per-node Elmore delays of the routing with edge (u,v) added; O(n).
  /// (u,v) must be distinct existing nodes; an already-present edge is
  /// legal to query (the result then reflects a doubled wire).
  [[nodiscard]] std::vector<double> screened_delays(graph::NodeId u,
                                                    graph::NodeId v) const;

  /// max-over-sinks of screened_delays; O(n).
  [[nodiscard]] double screened_max_delay(graph::NodeId u, graph::NodeId v) const;

  /// Base (no added edge) per-node Elmore delays.
  [[nodiscard]] const std::vector<double>& base_delays() const { return m1_; }
  [[nodiscard]] double base_max_delay() const;

 private:
  const graph::RoutingGraph& g_;
  spice::Technology tech_;
  std::vector<graph::NodeId> sinks_;
  linalg::DenseMatrix inverse_;   // G^{-1}
  std::vector<double> cap_;       // diagonal C
  std::vector<double> m1_;        // G^{-1} C 1
};

}  // namespace ntr::delay
