#include "delay/incremental_elmore.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "delay/moments.h"
#include "geom/point.h"
#include "linalg/vector_ops.h"

namespace ntr::delay {

IncrementalElmore::IncrementalElmore(const graph::RoutingGraph& g,
                                     const spice::Technology& tech)
    : tech_(tech) {
  build(g);
}

void IncrementalElmore::build(const graph::RoutingGraph& g) {
  const GroundedSystem sys = assemble_grounded_system(g, tech_);
  const std::size_t n = g.node_count();
  const linalg::CholeskyFactorization chol(sys.conductance);

  // Explicit transfer-resistance matrix: n back-substitutions. This single
  // O(n^3) setup is amortized over the O(n^2) candidate queries of one
  // LDRG round.
  inverse_ = linalg::DenseMatrix(n, n);
  std::vector<double> unit(n, 0.0);
  for (std::size_t col = 0; col < n; ++col) {
    unit[col] = 1.0;
    const linalg::Vector x = chol.solve(unit);
    unit[col] = 0.0;
    for (std::size_t row = 0; row < n; ++row) inverse_(row, col) = x[row];
  }
  cap_ = sys.capacitance;
  m1_ = inverse_.multiply(cap_);
  sinks_ = g.sinks();

  g_ = &g;
  node_count_ = g.node_count();
  edge_count_ = g.edge_count();
  wirelength_ = g.total_wirelength();
  ++rebuilds_;
}

bool IncrementalElmore::matches(const graph::RoutingGraph& g) const {
  return g_ == &g && node_count_ == g.node_count() &&
         edge_count_ == g.edge_count() && wirelength_ == g.total_wirelength();
}

void IncrementalElmore::refresh(const graph::RoutingGraph& g) { build(g); }

std::vector<double> IncrementalElmore::candidate_delays(graph::NodeId u,
                                                        graph::NodeId v) const {
  const std::size_t n = node_count_;
  if (u >= n || v >= n || u == v)
    throw std::invalid_argument("candidate_delays: invalid node pair");

  const double length = geom::manhattan_distance(g_->node(u).pos, g_->node(v).pos);
  const double g_e = wire_conductance(length, 1.0, tech_);
  const double c_half = tech_.wire_capacitance(length, 1.0) / 2.0;

  // y = G^{-1} (e_u - e_v), read off the symmetric cached inverse. The
  // Sherman-Morrison denominator 1 + g_e * w^T G^{-1} w is >= 1 for an SPD
  // system, but a degenerate short (g_e ~ 1e6 S) can still push the update
  // into cancellation; those queries take the exact path.
  const double y_u = inverse_(u, u) - inverse_(u, v);
  const double y_v = inverse_(v, u) - inverse_(v, v);
  const double spread = g_e * (y_u - y_v);
  if (!std::isfinite(spread) || spread > kDeltaConditionLimit) {
    exact_fallbacks_.fetch_add(1, std::memory_order_relaxed);
    return candidate_delays_exact(u, v);
  }

  //   m1' = X c' - g_e * y * (y . c') / (1 + g_e * (y_u - y_v))
  // with X = G^{-1} and X c' = m1 + c_half * (X e_u + X e_v).
  std::vector<double> result(n);
  double y_dot_cprime = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double y_i = inverse_(i, u) - inverse_(i, v);
    result[i] = m1_[i] + c_half * (inverse_(i, u) + inverse_(i, v));
    const double cprime_i = cap_[i] + (i == u || i == v ? c_half : 0.0);
    y_dot_cprime += y_i * cprime_i;
  }
  const double scale = g_e * y_dot_cprime / (1.0 + spread);
  for (std::size_t i = 0; i < n; ++i)
    result[i] -= scale * (inverse_(i, u) - inverse_(i, v));

  delta_evaluations_.fetch_add(1, std::memory_order_relaxed);
  return result;
}

std::vector<double> IncrementalElmore::candidate_delays_exact(
    graph::NodeId u, graph::NodeId v) const {
  graph::RoutingGraph trial = *g_;
  if (!trial.has_edge(u, v)) {
    trial.add_edge(u, v);
    return graph_elmore_delays(trial, tech_);
  }
  // A doubled wire is not representable in RoutingGraph (add_edge dedups);
  // assemble the doubled system directly.
  GroundedSystem sys = assemble_grounded_system(trial, tech_);
  const double length =
      geom::manhattan_distance(trial.node(u).pos, trial.node(v).pos);
  const double g_e = wire_conductance(length, 1.0, tech_);
  const double c_half = tech_.wire_capacitance(length, 1.0) / 2.0;
  sys.conductance(u, u) += g_e;
  sys.conductance(v, v) += g_e;
  sys.conductance(u, v) -= g_e;
  sys.conductance(v, u) -= g_e;
  sys.capacitance[u] += c_half;
  sys.capacitance[v] += c_half;
  const linalg::CholeskyFactorization chol(sys.conductance);
  return chol.solve(sys.capacitance);
}

double IncrementalElmore::base_max_delay() const {
  double worst = 0.0;
  for (const graph::NodeId s : sinks_) worst = std::max(worst, m1_[s]);
  return worst;
}

IncrementalElmoreStats IncrementalElmore::stats() const {
  IncrementalElmoreStats s;
  s.delta_evaluations = delta_evaluations_.load(std::memory_order_relaxed);
  s.exact_fallbacks = exact_fallbacks_.load(std::memory_order_relaxed);
  s.rebuilds = rebuilds_;
  return s;
}

}  // namespace ntr::delay
