#pragma once

#include <vector>

#include "graph/paths.h"
#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::delay {

/// O(k) Elmore delay of a routing *tree* (equation (1) of the paper):
///
///   t_ED(n_i) = r_d * C_root + sum over path edges e_j of
///               r_{e_j} * (c_{e_j}/2 + C_j)
///
/// where C_j is the capacitance of the subtree hanging below edge e_j
/// (edge caps plus sink loads). Returns one delay per graph node, indexed
/// by NodeId (the source entry is r_d * C_root: the delay contribution of
/// charging the whole tree through the driver). Throws
/// std::invalid_argument if the graph is not a tree -- the paper's H2/H3
/// heuristics rely on exactly this restriction.
std::vector<double> elmore_node_delays(const graph::RoutingGraph& g,
                                       const spice::Technology& tech);

/// Same computation when the caller already holds a rooted orientation.
std::vector<double> elmore_node_delays(const graph::RoutingGraph& g,
                                       const graph::RootedTree& tree,
                                       const spice::Technology& tech);

/// max over sinks of elmore_node_delays: the paper's t_ED(T(N)).
double elmore_tree_delay(const graph::RoutingGraph& g, const spice::Technology& tech);

/// Total capacitance seen by the driver: all edge caps plus sink loads.
double tree_total_capacitance(const graph::RoutingGraph& g,
                              const spice::Technology& tech);

}  // namespace ntr::delay
