#include "delay/evaluator.h"

#include <algorithm>
#include <stdexcept>

#include "delay/elmore.h"
#include "delay/incremental_elmore.h"
#include "delay/moments.h"
#include "delay/two_pole.h"
#include "spice/netlist.h"

namespace ntr::delay {

namespace {

std::vector<double> select_sinks(const graph::RoutingGraph& g,
                                 const std::vector<double>& per_node) {
  std::vector<double> out;
  const std::vector<graph::NodeId> sinks = g.sinks();
  out.reserve(sinks.size());
  for (const graph::NodeId s : sinks) out.push_back(per_node[s]);
  return out;
}

/// Incremental what-if scorer backed by the Sherman-Morrison Elmore
/// cache; `scale` folds in the ln(2) rescale of ScaledElmoreEvaluator.
class IncrementalElmoreScorer final : public CandidateScorer {
 public:
  IncrementalElmoreScorer(const graph::RoutingGraph& g,
                          const spice::Technology& tech, double scale)
      : sinks_(g.sinks()), engine_(g, tech), scale_(scale) {}

  [[nodiscard]] std::vector<double> candidate_sink_delays(
      graph::NodeId u, graph::NodeId v) const override {
    const std::vector<double> per_node = engine_.candidate_delays(u, v);
    std::vector<double> out;
    out.reserve(sinks_.size());
    for (const graph::NodeId s : sinks_) out.push_back(scale_ * per_node[s]);
    return out;
  }

 private:
  std::vector<graph::NodeId> sinks_;
  IncrementalElmore engine_;
  double scale_;
};

}  // namespace

double DelayEvaluator::max_delay(const graph::RoutingGraph& g) const {
  double worst = 0.0;
  for (const double d : sink_delays(g)) worst = std::max(worst, d);
  return worst;
}

double DelayEvaluator::weighted_delay(const graph::RoutingGraph& g,
                                      std::span<const double> criticality) const {
  const std::vector<double> delays = sink_delays(g);
  if (criticality.size() != delays.size())
    throw std::invalid_argument(
        "weighted_delay: criticality size must match sink count");
  double sum = 0.0;
  for (std::size_t i = 0; i < delays.size(); ++i) sum += criticality[i] * delays[i];
  return sum;
}

std::vector<double> ElmoreTreeEvaluator::sink_delays(
    const graph::RoutingGraph& g) const {
  return select_sinks(g, elmore_node_delays(g, tech_));
}

std::vector<double> GraphElmoreEvaluator::sink_delays(
    const graph::RoutingGraph& g) const {
  return select_sinks(g, graph_elmore_delays(g, tech_));
}

std::unique_ptr<CandidateScorer> GraphElmoreEvaluator::make_candidate_scorer(
    const graph::RoutingGraph& g) const {
  return std::make_unique<IncrementalElmoreScorer>(g, tech_, 1.0);
}

std::vector<double> ScaledElmoreEvaluator::sink_delays(
    const graph::RoutingGraph& g) const {
  constexpr double kLn2 = 0.6931471805599453;
  std::vector<double> d = select_sinks(g, graph_elmore_delays(g, tech_));
  for (double& v : d) v *= kLn2;
  return d;
}

std::unique_ptr<CandidateScorer> ScaledElmoreEvaluator::make_candidate_scorer(
    const graph::RoutingGraph& g) const {
  constexpr double kLn2 = 0.6931471805599453;
  return std::make_unique<IncrementalElmoreScorer>(g, tech_, kLn2);
}

std::vector<double> TwoPoleEvaluator::sink_delays(const graph::RoutingGraph& g) const {
  return select_sinks(g, d2m_delays(g, tech_));
}

std::vector<double> TwoPoleWaveformEvaluator::sink_delays(
    const graph::RoutingGraph& g) const {
  const std::vector<TwoPoleModel> models = two_pole_models(g, tech_);
  std::vector<double> out;
  const std::vector<graph::NodeId> sinks = g.sinks();
  out.reserve(sinks.size());
  for (const graph::NodeId s : sinks)
    out.push_back(models[s].crossing(tech_.threshold_fraction));
  return out;
}

std::vector<double> TransientEvaluator::sink_delays(
    const graph::RoutingGraph& g) const {
  const spice::GraphNetlist netlist = spice::build_netlist(g, tech_, netlist_options_);
  std::vector<spice::CircuitNode> watch;
  watch.reserve(netlist.sink_graph_nodes.size());
  for (const graph::NodeId s : netlist.sink_graph_nodes)
    watch.push_back(netlist.graph_to_circuit[s]);

  sim::TransientSimulator simulator(netlist.circuit, transient_options_);
  const auto report = simulator.measure_crossings(watch, tech_.threshold_fraction);
  return report.crossing_s;
}

double TransientEvaluator::bounded_max_delay(const graph::RoutingGraph& g,
                                             double give_up_s) const {
  const spice::GraphNetlist netlist = spice::build_netlist(g, tech_, netlist_options_);
  std::vector<spice::CircuitNode> watch;
  watch.reserve(netlist.sink_graph_nodes.size());
  for (const graph::NodeId s : netlist.sink_graph_nodes)
    watch.push_back(netlist.graph_to_circuit[s]);

  sim::TransientSimulator simulator(netlist.circuit, transient_options_);
  const auto report =
      simulator.measure_crossings(watch, tech_.threshold_fraction, give_up_s);
  return report.max_crossing_s;
}

std::unique_ptr<DelayEvaluator> make_evaluator(const std::string& name,
                                               const spice::Technology& tech,
                                               const runtime::StopToken& stop) {
  if (name == "elmore") return std::make_unique<ElmoreTreeEvaluator>(tech);
  if (name == "graph-elmore") return std::make_unique<GraphElmoreEvaluator>(tech);
  if (name == "d2m") return std::make_unique<TwoPoleEvaluator>(tech);
  if (name == "transient") {
    sim::TransientOptions transient;
    transient.stop = stop;
    return std::make_unique<TransientEvaluator>(tech, spice::NetlistOptions{},
                                                transient);
  }
  return nullptr;
}

}  // namespace ntr::delay
