#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/routing_graph.h"
#include "runtime/stop.h"
#include "sim/transient.h"
#include "spice/graph_netlist.h"
#include "spice/technology.h"

namespace ntr::delay {

/// Fast what-if oracle for one routing revision: per-sink delays of the
/// attached graph plus one candidate edge (u,v), without materializing the
/// trial graph. Obtained from DelayEvaluator::make_candidate_scorer; valid
/// until the attached graph mutates. Implementations must be safe for
/// concurrent const calls -- LDRG's parallel scan queries one scorer from
/// every worker lane.
class CandidateScorer {
 public:
  virtual ~CandidateScorer() = default;

  /// Delays (seconds) per sink, ordered like g.sinks(), of the attached
  /// graph with edge (u,v) added. Must agree with sink_delays() on the
  /// materialized trial graph to ~1e-12.
  [[nodiscard]] virtual std::vector<double> candidate_sink_delays(
      graph::NodeId u, graph::NodeId v) const = 0;
};

/// Pluggable source-to-sink delay oracle over routing graphs. Every router
/// in this library (LDRG, heuristics, ERT, wire sizing) consumes this
/// interface, so the cost/accuracy point is a caller decision: the
/// transient engine plays the paper's SPICE role, the moment evaluators
/// play the Elmore screening role.
class DelayEvaluator {
 public:
  virtual ~DelayEvaluator() = default;

  /// Delay (seconds) per sink, ordered like g.sinks(). Implementations may
  /// require specific topologies (the tree-Elmore evaluator throws on
  /// cyclic graphs, as the paper's H2/H3 discussion demands).
  [[nodiscard]] virtual std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// t(G) = max over sinks (the ORG objective).
  [[nodiscard]] double max_delay(const graph::RoutingGraph& g) const;

  /// sum alpha_i * t(n_i) over sinks (the CSORG objective, Section 5.1).
  /// `criticality` is indexed like g.sinks() and must match its size.
  [[nodiscard]] double weighted_delay(const graph::RoutingGraph& g,
                                      std::span<const double> criticality) const;

  /// Optional incremental engine for add-edge what-if queries against `g`.
  /// Evaluators without a delta path return nullptr and callers fall back
  /// to sink_delays() on a trial copy. The default has no delta path.
  [[nodiscard]] virtual std::unique_ptr<CandidateScorer> make_candidate_scorer(
      const graph::RoutingGraph& g) const {
    (void)g;
    return nullptr;
  }

  /// max_delay with permission to give up: an implementation may return
  /// +infinity as soon as it can prove max_delay(g) > give_up_s, and must
  /// return exactly max_delay(g) whenever that value is <= give_up_s.
  /// LDRG's candidate scan uses this as a branch-and-bound cutoff -- a
  /// candidate whose delay provably exceeds the best score seen so far
  /// can never be selected, so its evaluation may stop early. The default
  /// ignores the bound.
  [[nodiscard]] virtual double bounded_max_delay(const graph::RoutingGraph& g,
                                                 double give_up_s) const {
    (void)give_up_s;
    return max_delay(g);
  }
};

/// O(k) tree Elmore formula; throws std::invalid_argument on non-trees.
class ElmoreTreeEvaluator final : public DelayEvaluator {
 public:
  explicit ElmoreTreeEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "elmore-tree"; }

 private:
  spice::Technology tech_;
};

/// Graph Elmore (first moment) via one SPD solve; works on any connected
/// topology.
class GraphElmoreEvaluator final : public DelayEvaluator {
 public:
  explicit GraphElmoreEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "elmore-graph"; }
  /// Sherman-Morrison delta engine (delay/incremental_elmore.h): one
  /// O(n^3) setup, then O(n) per candidate instead of a fresh SPD solve.
  [[nodiscard]] std::unique_ptr<CandidateScorer> make_candidate_scorer(
      const graph::RoutingGraph& g) const override;

 private:
  spice::Technology tech_;
};

/// ln(2)-scaled graph Elmore: the classical single-pole 50%-delay rule
/// (0.693 RC). Cheaper than D2M (one solve) and a much better absolute
/// estimate than raw Elmore when a single pole dominates; same ranking as
/// GraphElmoreEvaluator since it only rescales.
class ScaledElmoreEvaluator final : public DelayEvaluator {
 public:
  explicit ScaledElmoreEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "elmore-ln2"; }
  /// Same delta engine as GraphElmoreEvaluator, with the ln(2) rescale.
  [[nodiscard]] std::unique_ptr<CandidateScorer> make_candidate_scorer(
      const graph::RoutingGraph& g) const override;

 private:
  spice::Technology tech_;
};

/// D2M two-pole metric; two SPD solves, any topology.
class TwoPoleEvaluator final : public DelayEvaluator {
 public:
  explicit TwoPoleEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "two-pole-d2m"; }

 private:
  spice::Technology tech_;
};

/// AWE-style reduced-order model: fits a two-pole waveform per node from
/// three moment solves and reads the crossing at the technology's
/// threshold fraction. Unlike the D2M metric (fixed 50% formula), this
/// respects Technology::threshold_fraction, so it can screen for
/// non-standard measurement points at moment-solve cost.
class TwoPoleWaveformEvaluator final : public DelayEvaluator {
 public:
  explicit TwoPoleWaveformEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "two-pole-waveform"; }

 private:
  spice::Technology tech_;
};

/// Full transient 50%-threshold measurement through the in-repo circuit
/// simulator: the accurate-but-costly oracle, standing in for SPICE.
class TransientEvaluator final : public DelayEvaluator {
 public:
  explicit TransientEvaluator(const spice::Technology& tech,
                              spice::NetlistOptions netlist_options = {},
                              sim::TransientOptions transient_options = {})
      : tech_(tech),
        netlist_options_(netlist_options),
        transient_options_(transient_options) {}

  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "transient"; }
  /// Stops time-stepping once the simulated time passes give_up_s with a
  /// sink still below threshold (its crossing then provably exceeds the
  /// bound) and reports +infinity. Exact whenever the true max delay is
  /// within the bound.
  [[nodiscard]] double bounded_max_delay(const graph::RoutingGraph& g,
                                         double give_up_s) const override;

 private:
  spice::Technology tech_;
  spice::NetlistOptions netlist_options_;
  sim::TransientOptions transient_options_;
};

/// Constructs the evaluator the command surfaces name: "transient" (the
/// SPICE-role oracle; `stop` is threaded into its time-march so
/// deadlines/cancellation reach the inner loop), "elmore" (tree Elmore),
/// "graph-elmore", or "d2m". nullptr for unknown names. One instance per
/// request/solve keeps callers re-entrant: evaluators share nothing.
[[nodiscard]] std::unique_ptr<DelayEvaluator> make_evaluator(
    const std::string& name, const spice::Technology& tech,
    const runtime::StopToken& stop = {});

}  // namespace ntr::delay
