#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graph/routing_graph.h"
#include "sim/transient.h"
#include "spice/graph_netlist.h"
#include "spice/technology.h"

namespace ntr::delay {

/// Pluggable source-to-sink delay oracle over routing graphs. Every router
/// in this library (LDRG, heuristics, ERT, wire sizing) consumes this
/// interface, so the cost/accuracy point is a caller decision: the
/// transient engine plays the paper's SPICE role, the moment evaluators
/// play the Elmore screening role.
class DelayEvaluator {
 public:
  virtual ~DelayEvaluator() = default;

  /// Delay (seconds) per sink, ordered like g.sinks(). Implementations may
  /// require specific topologies (the tree-Elmore evaluator throws on
  /// cyclic graphs, as the paper's H2/H3 discussion demands).
  [[nodiscard]] virtual std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// t(G) = max over sinks (the ORG objective).
  [[nodiscard]] double max_delay(const graph::RoutingGraph& g) const;

  /// sum alpha_i * t(n_i) over sinks (the CSORG objective, Section 5.1).
  /// `criticality` is indexed like g.sinks() and must match its size.
  [[nodiscard]] double weighted_delay(const graph::RoutingGraph& g,
                                      std::span<const double> criticality) const;
};

/// O(k) tree Elmore formula; throws std::invalid_argument on non-trees.
class ElmoreTreeEvaluator final : public DelayEvaluator {
 public:
  explicit ElmoreTreeEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "elmore-tree"; }

 private:
  spice::Technology tech_;
};

/// Graph Elmore (first moment) via one SPD solve; works on any connected
/// topology.
class GraphElmoreEvaluator final : public DelayEvaluator {
 public:
  explicit GraphElmoreEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "elmore-graph"; }

 private:
  spice::Technology tech_;
};

/// ln(2)-scaled graph Elmore: the classical single-pole 50%-delay rule
/// (0.693 RC). Cheaper than D2M (one solve) and a much better absolute
/// estimate than raw Elmore when a single pole dominates; same ranking as
/// GraphElmoreEvaluator since it only rescales.
class ScaledElmoreEvaluator final : public DelayEvaluator {
 public:
  explicit ScaledElmoreEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "elmore-ln2"; }

 private:
  spice::Technology tech_;
};

/// D2M two-pole metric; two SPD solves, any topology.
class TwoPoleEvaluator final : public DelayEvaluator {
 public:
  explicit TwoPoleEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "two-pole-d2m"; }

 private:
  spice::Technology tech_;
};

/// AWE-style reduced-order model: fits a two-pole waveform per node from
/// three moment solves and reads the crossing at the technology's
/// threshold fraction. Unlike the D2M metric (fixed 50% formula), this
/// respects Technology::threshold_fraction, so it can screen for
/// non-standard measurement points at moment-solve cost.
class TwoPoleWaveformEvaluator final : public DelayEvaluator {
 public:
  explicit TwoPoleWaveformEvaluator(const spice::Technology& tech) : tech_(tech) {}
  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "two-pole-waveform"; }

 private:
  spice::Technology tech_;
};

/// Full transient 50%-threshold measurement through the in-repo circuit
/// simulator: the accurate-but-costly oracle, standing in for SPICE.
class TransientEvaluator final : public DelayEvaluator {
 public:
  explicit TransientEvaluator(const spice::Technology& tech,
                              spice::NetlistOptions netlist_options = {},
                              sim::TransientOptions transient_options = {})
      : tech_(tech),
        netlist_options_(netlist_options),
        transient_options_(transient_options) {}

  [[nodiscard]] std::vector<double> sink_delays(
      const graph::RoutingGraph& g) const override;
  [[nodiscard]] std::string name() const override { return "transient"; }

 private:
  spice::Technology tech_;
  spice::NetlistOptions netlist_options_;
  sim::TransientOptions transient_options_;
};

}  // namespace ntr::delay
