#pragma once

#include <string>
#include <string_view>

#include "spice/netlist.h"

namespace ntr::spice {

/// Serializes the circuit as a SPICE2-compatible deck. Step sources are
/// written as PWL waveforms with a 1 ps rise. The deck includes a .TRAN
/// card covering `tran_stop_s` with `tran_step_s` resolution and .PRINT
/// cards for every node, so the file can be fed to an external SPICE for
/// cross-validation of the in-repo transient engine.
std::string write_deck(const Circuit& circuit, std::string_view title,
                       double tran_step_s = 1e-12, double tran_stop_s = 20e-9);

/// Parses a deck produced by write_deck (or hand-written in the same
/// R/C/L/V subset). Node names are preserved; element ordering follows the
/// deck. Throws std::invalid_argument on malformed decks and on elements
/// outside the supported linear subset.
Circuit parse_deck(std::string_view deck);

}  // namespace ntr::spice
