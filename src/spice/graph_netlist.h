#pragma once

#include <vector>

#include "graph/routing_graph.h"
#include "spice/netlist.h"
#include "spice/technology.h"

namespace ntr::spice {

/// Controls how routing wires are expanded into lumped circuit elements.
struct NetlistOptions {
  /// Lumped pi sections per wire. One section is the classical pi model
  /// (C/2 -- R -- C/2); more sections converge to the distributed RC line
  /// (see bench/ablation_segmentation for the convergence study).
  unsigned segments_per_edge = 1;

  /// When positive, each edge instead uses ceil(length / max_segment_length_um)
  /// sections (at least segments_per_edge). Keeps long wires accurate
  /// without over-modeling short ones.
  double max_segment_length_um = 0.0;

  /// Include the series wire inductance of Table 1 (RLC lines). Off by
  /// default: at 0.8um geometries wL << R, see bench/ablation_inductance.
  bool include_inductance = false;

  /// Attach the sink loading capacitance to the source pin as well.
  bool load_source_pin = false;
};

/// A circuit built from a routing graph, with the mapping needed to read
/// delays back out.
struct GraphNetlist {
  Circuit circuit;
  /// circuit node for each routing-graph node (index = graph NodeId).
  std::vector<CircuitNode> graph_to_circuit;
  /// The ideal-step node feeding the driver resistor.
  CircuitNode driver_input = kGround;
  /// Graph ids of the sink pins, in the order used for delay reporting.
  std::vector<graph::NodeId> sink_graph_nodes;
};

/// Expands a routing graph into the paper's circuit model: an ideal step
/// source behind the driver resistance at the net source, each wire as a
/// chain of lumped pi sections (RC, optionally RLC), and the Table-1 sink
/// load at every sink pin. Works for arbitrary graph topologies (cycles
/// included) -- this is the "SPICE" half of the reproduction.
GraphNetlist build_netlist(const graph::RoutingGraph& g, const Technology& tech,
                           const NetlistOptions& options = {});

}  // namespace ntr::spice
