#pragma once

#include <string>
#include <string_view>

namespace ntr::spice {

/// Parses a SPICE-style engineering number: optional sign, mantissa,
/// optional scale suffix (f p n u m k meg g t, case-insensitive; trailing
/// unit letters after the suffix are ignored, as SPICE does with "15.3fF").
/// Throws std::invalid_argument on malformed input.
double parse_spice_number(std::string_view text);

/// Formats a value with an engineering suffix, e.g. 1.53e-14 -> "15.3f".
/// Values outside [1e-18, 1e15) fall back to scientific notation.
std::string format_spice_number(double value);

/// Seconds -> human-readable string, e.g. 1.23e-9 -> "1.23ns".
std::string format_time(double seconds);

}  // namespace ntr::spice
