#pragma once

namespace ntr::spice {

/// Interconnect technology parameters (Table 1 of the paper), representative
/// of a 0.8um CMOS process. Lengths are micrometers; electrical units are
/// SI (ohm, farad, henry, second, volt).
struct Technology {
  double driver_resistance_ohm = 100.0;        ///< r_d at the net source
  double wire_resistance_ohm_per_um = 0.03;    ///< 0.03 ohm/um
  double wire_capacitance_f_per_um = 0.352e-15;///< 0.352 fF/um
  double wire_inductance_h_per_um = 492e-18;   ///< 492 fH/um
  double sink_capacitance_f = 15.3e-15;        ///< 15.3 fF load per pin
  double layout_side_um = 10'000.0;            ///< 10^2 mm^2 layout region
  double vdd_v = 1.0;                          ///< normalized supply; delays are
                                               ///< measured at 50% of the step,
                                               ///< so the absolute swing cancels

  /// Threshold fraction of the final value used for delay measurement.
  double threshold_fraction = 0.5;

  [[nodiscard]] double wire_resistance(double length_um, double width = 1.0) const {
    return wire_resistance_ohm_per_um * length_um / width;
  }
  [[nodiscard]] double wire_capacitance(double length_um, double width = 1.0) const {
    return wire_capacitance_f_per_um * length_um * width;
  }
  [[nodiscard]] double wire_inductance(double length_um, double width = 1.0) const {
    return wire_inductance_h_per_um * length_um / width;
  }
};

/// The paper's default technology instance.
inline constexpr Technology kTable1Technology{};

}  // namespace ntr::spice
