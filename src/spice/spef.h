#pragma once

#include <string>
#include <string_view>

#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::spice {

/// Serializes one routed net's parasitics as a (minimal, syntactically
/// conforming) IEEE 1481 SPEF *D_NET section with header: distributed RC
/// with one node per routing-graph node, wire resistance per edge, half
/// of each wire's capacitance lumped at either endpoint, and the sink
/// load capacitances at sink pins. Units: R in OHM, C in FF.
///
/// This is the standard hand-off format from routers to sign-off timing
/// tools, so a routing produced here (tree or non-tree -- SPEF has no
/// acyclicity requirement) can be consumed by an external STA for
/// cross-validation, just as write_deck() hands the same network to an
/// external SPICE.
///
/// Node naming: pins are "<net>:P<i>" (i = graph node id), internal
/// Steiner nodes "<net>:S<i>". The driver pin (node 0) is the net's
/// output connection; sink pins are input connections.
std::string write_spef(const graph::RoutingGraph& g, const Technology& tech,
                       std::string_view net_name = "net0",
                       std::string_view design_name = "ntr");

}  // namespace ntr::spice
