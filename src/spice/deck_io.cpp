#include "spice/deck_io.h"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "spice/units.h"

namespace ntr::spice {

std::string write_deck(const Circuit& circuit, std::string_view title,
                       double tran_step_s, double tran_stop_s) {
  std::ostringstream out;
  out << "* " << title << "\n";
  for (const Element& e : circuit.elements()) {
    const std::string& na = circuit.node_name(e.a);
    const std::string& nb = circuit.node_name(e.b);
    switch (e.kind) {
      case ElementKind::kResistor:
      case ElementKind::kCapacitor:
      case ElementKind::kInductor:
        out << e.name << ' ' << na << ' ' << nb << ' ' << format_spice_number(e.value)
            << "\n";
        break;
      case ElementKind::kVoltageSource:
        if (e.waveform == SourceWaveform::kStep) {
          out << e.name << ' ' << na << ' ' << nb << " PWL(0 0 1p "
              << format_spice_number(e.value) << ")\n";
        } else {
          out << e.name << ' ' << na << ' ' << nb << " DC "
              << format_spice_number(e.value) << "\n";
        }
        break;
    }
  }
  out << ".TRAN " << format_spice_number(tran_step_s) << ' '
      << format_spice_number(tran_stop_s) << "\n";
  for (std::size_t n = 1; n < circuit.node_count(); ++n)
    out << ".PRINT TRAN V(" << circuit.node_name(n) << ")\n";
  out << ".END\n";
  return out.str();
}

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::string token;
  for (const char c : line) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      if (!token.empty()) {
        tokens.push_back(token);
        token.clear();
      }
    } else {
      token.push_back(c);
    }
  }
  if (!token.empty()) tokens.push_back(token);
  return tokens;
}

}  // namespace

Circuit parse_deck(std::string_view deck) {
  Circuit circuit;
  std::unordered_map<std::string, CircuitNode> nodes{{"0", kGround}, {"GND", kGround}};
  const auto node_of = [&](const std::string& name) {
    auto [it, inserted] = nodes.try_emplace(name, 0);
    if (inserted) it->second = circuit.add_node(name);
    return it->second;
  };

  std::istringstream in{std::string(deck)};
  std::string line;
  bool first_line = true;
  while (std::getline(in, line)) {
    // A leading comment line is the traditional title; we also accept decks
    // starting directly with elements.
    if (first_line) {
      first_line = false;
      if (!line.empty() && line[0] == '*') continue;
    }
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head[0] == '*') continue;  // comment
    if (head[0] == '.') continue;  // control cards (.TRAN/.PRINT/.END)

    const char kind = static_cast<char>(std::toupper(static_cast<unsigned char>(head[0])));
    if (tokens.size() < 4)
      throw std::invalid_argument("parse_deck: malformed element line: " + line);
    const CircuitNode a = node_of(tokens[1]);
    const CircuitNode b = node_of(tokens[2]);
    switch (kind) {
      case 'R':
        circuit.add_resistor(head, a, b, parse_spice_number(tokens[3]));
        break;
      case 'C':
        circuit.add_capacitor(head, a, b, parse_spice_number(tokens[3]));
        break;
      case 'L':
        circuit.add_inductor(head, a, b, parse_spice_number(tokens[3]));
        break;
      case 'V': {
        // Accept "V a b DC v", "V a b v" and "V a b PWL(0 0 t v)".
        std::string rest;
        for (std::size_t i = 3; i < tokens.size(); ++i) {
          if (i > 3) rest += ' ';
          rest += tokens[i];
        }
        std::string upper;
        for (const char c : rest)
          upper.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
        if (upper.rfind("PWL", 0) == 0) {
          // Final PWL level = last numeric field.
          const std::size_t close = rest.rfind(')');
          const std::size_t open = rest.find('(');
          if (open == std::string::npos || close == std::string::npos || close <= open)
            throw std::invalid_argument("parse_deck: malformed PWL: " + line);
          std::string body = rest.substr(open + 1, close - open - 1);
          for (char& c : body)
            if (c == ',') c = ' ';
          const std::vector<std::string> fields = tokenize(body);
          if (fields.empty())
            throw std::invalid_argument("parse_deck: empty PWL: " + line);
          circuit.add_voltage_source(head, a, b, parse_spice_number(fields.back()),
                                     SourceWaveform::kStep);
        } else if (upper.rfind("DC", 0) == 0) {
          circuit.add_voltage_source(head, a, b, parse_spice_number(rest.substr(2)),
                                     SourceWaveform::kDc);
        } else {
          circuit.add_voltage_source(head, a, b, parse_spice_number(rest),
                                     SourceWaveform::kDc);
        }
        break;
      }
      default:
        throw std::invalid_argument(
            "parse_deck: unsupported element (only R/C/L/V): " + line);
    }
  }
  return circuit;
}

}  // namespace ntr::spice
