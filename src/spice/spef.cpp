#include "spice/spef.h"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace ntr::spice {

std::string write_spef(const graph::RoutingGraph& g, const Technology& tech,
                       std::string_view net_name, std::string_view design_name) {
  if (g.node_count() == 0) throw std::invalid_argument("write_spef: empty routing");

  const auto node_name = [&](graph::NodeId n) {
    const char tag = g.node(n).kind == graph::NodeKind::kSteiner ? 'S' : 'P';
    return std::string(net_name) + ":" + tag + std::to_string(n);
  };

  // Lumped capacitance per node: half of each incident wire + sink loads.
  std::vector<double> cap(g.node_count(), 0.0);
  for (const graph::GraphEdge& e : g.edges()) {
    const double half = tech.wire_capacitance(e.length, e.width) / 2.0;
    cap[e.u] += half;
    cap[e.v] += half;
  }
  double total_cap = 0.0;
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    if (g.node(n).kind == graph::NodeKind::kSink) cap[n] += tech.sink_capacitance_f;
    total_cap += cap[n];
  }

  std::ostringstream out;
  out.precision(6);
  out << "*SPEF \"IEEE 1481-1998\"\n";
  out << "*DESIGN \"" << design_name << "\"\n";
  out << "*VENDOR \"ntr\"\n*PROGRAM \"ntr\"\n*VERSION \"1.0\"\n";
  out << "*DESIGN_FLOW \"\"\n";
  out << "*DIVIDER /\n*DELIMITER :\n*BUS_DELIMITER [ ]\n";
  out << "*T_UNIT 1 NS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n\n";

  out << "*D_NET " << net_name << ' ' << total_cap * 1e15 << "\n";
  out << "*CONN\n";
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    switch (g.node(n).kind) {
      case graph::NodeKind::kSource:
        out << "*P " << node_name(n) << " O\n";
        break;
      case graph::NodeKind::kSink:
        out << "*P " << node_name(n) << " I\n";
        break;
      case graph::NodeKind::kSteiner:
        break;  // internal nodes are not connections
    }
  }

  out << "*CAP\n";
  std::size_t cap_index = 1;
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    if (cap[n] <= 0.0) continue;
    out << cap_index++ << ' ' << node_name(n) << ' ' << cap[n] * 1e15 << "\n";
  }

  out << "*RES\n";
  std::size_t res_index = 1;
  for (const graph::GraphEdge& e : g.edges()) {
    const double r = e.length > 0.0 ? tech.wire_resistance(e.length, e.width) : 1e-6;
    out << res_index++ << ' ' << node_name(e.u) << ' ' << node_name(e.v) << ' ' << r
        << "\n";
  }
  out << "*END\n";
  return out.str();
}

}  // namespace ntr::spice
