#include "spice/netlist.h"

#include <stdexcept>

namespace ntr::spice {

CircuitNode Circuit::add_node(std::string name) {
  // ntr-alloc-in-hot-path(amortized builder growth; size is caller-driven)
  node_names_.push_back(std::move(name));
  return node_names_.size() - 1;
}

void Circuit::check_nodes(CircuitNode a, CircuitNode b) const {
  if (a >= node_names_.size() || b >= node_names_.size())
    throw std::out_of_range("Circuit: node index out of range");
  if (a == b) throw std::invalid_argument("Circuit: element shorts a node to itself");
}

void Circuit::add_resistor(std::string name, CircuitNode a, CircuitNode b, double ohms) {
  check_nodes(a, b);
  if (ohms <= 0.0) throw std::invalid_argument("Circuit: resistance must be positive");
  // ntr-alloc-in-hot-path(amortized builder growth; size is caller-driven)
  elements_.push_back({ElementKind::kResistor, std::move(name), a, b, ohms,
                       SourceWaveform::kDc});
}

void Circuit::add_capacitor(std::string name, CircuitNode a, CircuitNode b, double farads) {
  check_nodes(a, b);
  if (farads <= 0.0) throw std::invalid_argument("Circuit: capacitance must be positive");
  // ntr-alloc-in-hot-path(amortized builder growth; size is caller-driven)
  elements_.push_back({ElementKind::kCapacitor, std::move(name), a, b, farads,
                       SourceWaveform::kDc});
}

void Circuit::add_inductor(std::string name, CircuitNode a, CircuitNode b, double henries) {
  check_nodes(a, b);
  if (henries <= 0.0) throw std::invalid_argument("Circuit: inductance must be positive");
  // ntr-alloc-in-hot-path(amortized builder growth; size is caller-driven)
  elements_.push_back({ElementKind::kInductor, std::move(name), a, b, henries,
                       SourceWaveform::kDc});
}

void Circuit::add_voltage_source(std::string name, CircuitNode pos, CircuitNode neg,
                                 double volts, SourceWaveform waveform) {
  check_nodes(pos, neg);
  // ntr-alloc-in-hot-path(amortized builder growth; size is caller-driven)
  elements_.push_back({ElementKind::kVoltageSource, std::move(name), pos, neg, volts,
                       waveform});
}

std::size_t Circuit::element_count(ElementKind kind) const {
  std::size_t count = 0;
  for (const Element& e : elements_)
    if (e.kind == kind) ++count;
  return count;
}

double Circuit::total_capacitance() const {
  double sum = 0.0;
  for (const Element& e : elements_)
    if (e.kind == ElementKind::kCapacitor) sum += e.value;
  return sum;
}

}  // namespace ntr::spice
