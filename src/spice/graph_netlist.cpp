#include "spice/graph_netlist.h"

#include <cmath>
#include <string>

namespace ntr::spice {

namespace {

/// Resistance used for zero-length connections (coincident points joined
/// by a degenerate wire): electrically a short, numerically well-posed.
constexpr double kShortResistanceOhm = 1e-6;

unsigned section_count(const NetlistOptions& options, double length_um) {
  unsigned sections = options.segments_per_edge == 0 ? 1 : options.segments_per_edge;
  if (options.max_segment_length_um > 0.0) {
    const auto needed =
        static_cast<unsigned>(std::ceil(length_um / options.max_segment_length_um));
    sections = std::max(sections, std::max(needed, 1u));
  }
  return sections;
}

}  // namespace

GraphNetlist build_netlist(const graph::RoutingGraph& g, const Technology& tech,
                           const NetlistOptions& options) {
  GraphNetlist out;
  Circuit& ckt = out.circuit;

  out.graph_to_circuit.reserve(g.node_count());
  out.sink_graph_nodes.reserve(g.node_count());
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    // ntr-alloc-in-hot-path(node names are the Circuit debug contract)
    out.graph_to_circuit.push_back(ckt.add_node("n" + std::to_string(n)));
  }

  // Driver: ideal step -> driver resistor -> source pin.
  out.driver_input = ckt.add_node("in");
  ckt.add_voltage_source("Vstep", out.driver_input, kGround, tech.vdd_v,
                         SourceWaveform::kStep);
  ckt.add_resistor("Rdrv", out.driver_input, out.graph_to_circuit[g.source()],
                   tech.driver_resistance_ohm);

  // Wires: chains of lumped pi sections.
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const graph::GraphEdge& edge = g.edge(e);
    // ntr-alloc-in-hot-path(edge tag seeds every element name below)
    const std::string tag = std::to_string(e);
    const CircuitNode head = out.graph_to_circuit[edge.u];
    const CircuitNode tail = out.graph_to_circuit[edge.v];

    if (edge.length <= 0.0) {
      ckt.add_resistor("Rshort" + tag, head, tail, kShortResistanceOhm);
      continue;
    }

    const unsigned sections = section_count(options, edge.length);
    const double seg_len = edge.length / sections;
    const double seg_r = tech.wire_resistance(seg_len, edge.width);
    const double seg_c = tech.wire_capacitance(seg_len, edge.width);
    const double seg_l = tech.wire_inductance(seg_len, edge.width);

    CircuitNode prev = head;
    for (unsigned s = 0; s < sections; ++s) {
      const CircuitNode next =
          s + 1 == sections
              ? tail
              // ntr-alloc-in-hot-path(pi-section node name; debug contract)
              : ckt.add_node("e" + tag + "s" + std::to_string(s));
      // ntr-alloc-in-hot-path(element name tag; Circuit debug contract)
      const std::string seg_tag = tag + "_" + std::to_string(s);
      ckt.add_capacitor("Cw" + seg_tag + "a", prev, kGround, seg_c / 2.0);
      if (options.include_inductance) {
        // ntr-alloc-in-hot-path(inductor mid-node name; debug contract)
        const CircuitNode mid = ckt.add_node("e" + tag + "l" + std::to_string(s));
        ckt.add_resistor("Rw" + seg_tag, prev, mid, seg_r);
        ckt.add_inductor("Lw" + seg_tag, mid, next, seg_l);
      } else {
        ckt.add_resistor("Rw" + seg_tag, prev, next, seg_r);
      }
      ckt.add_capacitor("Cw" + seg_tag + "b", next, kGround, seg_c / 2.0);
      prev = next;
    }
  }

  // Pin loads.
  for (graph::NodeId n = 0; n < g.node_count(); ++n) {
    const bool is_sink = g.node(n).kind == graph::NodeKind::kSink;
    const bool is_loaded_source =
        options.load_source_pin && g.node(n).kind == graph::NodeKind::kSource;
    if (is_sink || is_loaded_source) {
      // ntr-alloc-in-hot-path(load element name; Circuit debug contract)
      ckt.add_capacitor("Cload" + std::to_string(n), out.graph_to_circuit[n], kGround,
                        tech.sink_capacitance_f);
    }
    if (is_sink) out.sink_graph_nodes.push_back(n);
  }

  return out;
}

}  // namespace ntr::spice
