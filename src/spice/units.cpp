#include "spice/units.h"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ntr::spice {

double parse_spice_number(std::string_view text) {
  while (!text.empty() && std::isspace(static_cast<unsigned char>(text.front())))
    text.remove_prefix(1);
  if (text.empty()) throw std::invalid_argument("parse_spice_number: empty");
  double mantissa = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, mantissa);
  if (ec != std::errc{} || ptr == begin)
    throw std::invalid_argument("parse_spice_number: no numeric mantissa in '" +
                                std::string(text) + "'");

  std::string suffix;
  for (const char* p = ptr; p != end; ++p)
    suffix.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(*p))));

  double scale = 1.0;
  if (!suffix.empty()) {
    if (suffix.rfind("meg", 0) == 0) {
      scale = 1e6;
    } else {
      switch (suffix[0]) {
        case 't': scale = 1e12; break;
        case 'g': scale = 1e9; break;
        case 'k': scale = 1e3; break;
        case 'm': scale = 1e-3; break;
        case 'u': scale = 1e-6; break;
        case 'n': scale = 1e-9; break;
        case 'p': scale = 1e-12; break;
        case 'f': scale = 1e-15; break;
        case 'a': scale = 1e-18; break;
        default:
          // Unit letters like "ohm" or "v": no scaling.
          if (!std::isalpha(static_cast<unsigned char>(suffix[0])))
            throw std::invalid_argument("parse_spice_number: bad suffix '" + suffix + "'");
      }
    }
  }
  return mantissa * scale;
}

std::string format_spice_number(double value) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 9> kScales{{{1e12, "t"},
                                                 {1e9, "g"},
                                                 {1e6, "meg"},
                                                 {1e3, "k"},
                                                 {1.0, ""},
                                                 {1e-3, "m"},
                                                 {1e-6, "u"},
                                                 {1e-9, "n"},
                                                 {1e-12, "p"}}};
  if (value == 0.0) return "0";
  const double mag = std::abs(value);
  if (mag >= 1e15 || mag < 1e-16) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return buf;
  }
  // Femto handled with the table's smallest bucket check below.
  for (const Scale& s : kScales) {
    if (mag >= s.factor) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.6g%s", value / s.factor, s.suffix);
      return buf;
    }
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g%s", value / 1e-15, "f");
  return buf;
}

std::string format_time(double seconds) {
  struct Scale {
    double factor;
    const char* suffix;
  };
  static constexpr std::array<Scale, 5> kScales{
      {{1.0, "s"}, {1e-3, "ms"}, {1e-6, "us"}, {1e-9, "ns"}, {1e-12, "ps"}}};
  const double mag = std::abs(seconds);
  for (const Scale& s : kScales) {
    if (mag >= s.factor) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.4g%s", seconds / s.factor, s.suffix);
      return buf;
    }
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4g%s", seconds / 1e-15, "fs");
  return buf;
}

}  // namespace ntr::spice
