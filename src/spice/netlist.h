#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ntr::spice {

/// Circuit node index. Node 0 is always ground.
using CircuitNode = std::size_t;
inline constexpr CircuitNode kGround = 0;

enum class ElementKind { kResistor, kCapacitor, kInductor, kVoltageSource };

/// Independent voltage source waveform: either a DC level or an ideal step
/// from 0 to `value` volts at t = 0 (the paper drives the net with a step
/// behind the 100-ohm driver resistor).
enum class SourceWaveform { kDc, kStep };

struct Element {
  ElementKind kind;
  std::string name;     ///< SPICE-style designator, e.g. "R12", "Csink3"
  CircuitNode a = kGround;  ///< positive terminal
  CircuitNode b = kGround;  ///< negative terminal
  double value = 0.0;   ///< ohms / farads / henries / volts
  SourceWaveform waveform = SourceWaveform::kDc;  ///< sources only
};

/// A linear circuit: R, C, L elements and independent voltage sources over
/// an indexed node set. This is the common input of the transient engine,
/// the moment engine, and the SPICE-deck writer.
class Circuit {
 public:
  Circuit() { node_names_.emplace_back("0"); }

  /// Adds a named node; returns its index (>= 1).
  CircuitNode add_node(std::string name);

  /// Number of nodes including ground.
  [[nodiscard]] std::size_t node_count() const { return node_names_.size(); }
  [[nodiscard]] const std::string& node_name(CircuitNode n) const {
    return node_names_.at(n);
  }

  void add_resistor(std::string name, CircuitNode a, CircuitNode b, double ohms);
  void add_capacitor(std::string name, CircuitNode a, CircuitNode b, double farads);
  void add_inductor(std::string name, CircuitNode a, CircuitNode b, double henries);
  void add_voltage_source(std::string name, CircuitNode pos, CircuitNode neg,
                          double volts, SourceWaveform waveform);

  [[nodiscard]] std::span<const Element> elements() const { return elements_; }
  [[nodiscard]] std::size_t element_count(ElementKind kind) const;

  /// Sum of all capacitance to any terminal (diagnostic; equals total net
  /// capacitance for grounded-cap circuits).
  [[nodiscard]] double total_capacitance() const;

 private:
  void check_nodes(CircuitNode a, CircuitNode b) const;

  std::vector<std::string> node_names_;
  std::vector<Element> elements_;
};

}  // namespace ntr::spice
