#pragma once

#include "graph/net.h"
#include "graph/routing_graph.h"

namespace ntr::route {

/// Shortest-path-tree routing. In the geometric complete graph the
/// shortest source-sink route is the direct connection, so the SPT is the
/// source-rooted star: minimum radius, maximum cost. The classical
/// radius-extreme counterpart of the MST.
graph::RoutingGraph star_routing(const graph::Net& net);

/// Prim-Dijkstra trade-off construction (Alpert et al., paper ref [1]):
/// grow a tree from the source, always adding the pin v and tree node u
/// minimizing
///     c * pathlength(source -> u) + d(u, v).
/// c = 0 reduces to Prim's MST; c = 1 to a Dijkstra shortest-path tree
/// (star radius, though often cheaper than the star through path sharing).
/// Intermediate c trades wirelength against radius.
graph::RoutingGraph prim_dijkstra_routing(const graph::Net& net, double c);

}  // namespace ntr::route
