#include "route/ert.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "check/contracts.h"
#include "geom/point.h"
#include "graph/validate.h"
#include "delay/elmore.h"

namespace ntr::route {

namespace {

/// Closest point of the axis-aligned bounding box of edge (a, b) to p:
/// reachable by a monotone rectilinear route of the edge, so splitting
/// there never lengthens the edge.
geom::Point closest_bbox_point(const geom::Point& a, const geom::Point& b,
                               const geom::Point& p) {
  const double lox = a.x < b.x ? a.x : b.x;
  const double hix = a.x < b.x ? b.x : a.x;
  const double loy = a.y < b.y ? a.y : b.y;
  const double hiy = a.y < b.y ? b.y : a.y;
  return geom::Point{std::clamp(p.x, lox, hix), std::clamp(p.y, loy, hiy)};
}

struct Candidate {
  enum class Kind { kNodeAttach, kEdgeAttach } kind = Kind::kNodeAttach;
  graph::NodeId node = graph::kInvalidNode;  // attachment node (kNodeAttach)
  graph::EdgeId edge = graph::kInvalidEdge;  // split edge (kEdgeAttach)
  geom::Point split_point;
  std::size_t pin = 0;  // net pin index being attached
};

/// Objective of a candidate tree under the (possibly weighted) Elmore
/// criterion. `node_pin` maps tree nodes to net pins for criticality
/// lookup.
double tree_objective(const graph::RoutingGraph& t,
                      const std::vector<std::size_t>& node_pin,
                      const spice::Technology& tech,
                      const std::vector<double>& criticality) {
  const std::vector<double> delays = delay::elmore_node_delays(t, tech);
  double objective = 0.0;
  double total_delay = 0.0;
  for (graph::NodeId n = 0; n < t.node_count(); ++n) {
    if (t.node(n).kind != graph::NodeKind::kSink) continue;
    total_delay += delays[n];
    if (criticality.empty()) {
      objective = std::max(objective, delays[n]);
    } else {
      const std::size_t pin = node_pin[n];
      objective += criticality.at(pin - 1) * delays[n];
    }
  }
  if (!criticality.empty()) {
    // Tie-break term: while the weighted sum ignores zero-criticality
    // sinks (and is identically zero until a weighted sink attaches), a
    // vanishingly small uniform weight keeps the construction from wiring
    // the non-critical sinks arbitrarily badly.
    const double scale =
        std::max(*std::max_element(criticality.begin(), criticality.end()), 1.0);
    objective += 1e-6 * scale * total_delay;
  }
  return objective;
}

/// Applies a candidate to (t, node_pin); returns nothing -- t is grown in
/// place.
void apply_candidate(graph::RoutingGraph& t, std::vector<std::size_t>& node_pin,
                     const graph::Net& net, const Candidate& c) {
  graph::NodeId attach = c.node;
  if (c.kind == Candidate::Kind::kEdgeAttach) {
    attach = t.split_edge(c.edge, c.split_point);
    node_pin.push_back(kNoPin);
  }
  const graph::NodeId sink = t.add_node(net.pins[c.pin], graph::NodeKind::kSink);
  node_pin.push_back(c.pin);
  t.add_edge(attach, sink);
}

}  // namespace

ErtResult elmore_routing_tree(const graph::Net& net, const spice::Technology& tech,
                              const ErtOptions& options) {
  net.validate();
  if (!options.criticality.empty() && options.criticality.size() != net.sink_count())
    throw std::invalid_argument(
        "elmore_routing_tree: criticality size must equal the sink count");

  ErtResult result;
  result.graph.add_node(net.source(), graph::NodeKind::kSource);
  result.node_pin.push_back(0);

  std::vector<std::size_t> unattached;
  for (std::size_t p = 1; p < net.pins.size(); ++p) unattached.push_back(p);

  while (!unattached.empty()) {
    double best_objective = std::numeric_limits<double>::infinity();
    Candidate best;
    bool found = false;

    for (const std::size_t pin : unattached) {
      // Attach directly to an existing node.
      for (graph::NodeId u = 0; u < result.graph.node_count(); ++u) {
        Candidate c{Candidate::Kind::kNodeAttach, u, graph::kInvalidEdge, {}, pin};
        graph::RoutingGraph trial = result.graph;
        std::vector<std::size_t> trial_pin = result.node_pin;
        apply_candidate(trial, trial_pin, net, c);
        const double objective = tree_objective(trial, trial_pin, tech,
                                                options.criticality);
        if (objective < best_objective) {
          best_objective = objective;
          best = c;
          found = true;
        }
      }
      // SERT: attach via a Steiner point on an existing edge.
      if (options.steiner) {
        for (graph::EdgeId e = 0; e < result.graph.edge_count(); ++e) {
          const graph::GraphEdge& edge = result.graph.edge(e);
          const geom::Point split = closest_bbox_point(
              result.graph.node(edge.u).pos, result.graph.node(edge.v).pos,
              net.pins[pin]);
          if (split == result.graph.node(edge.u).pos ||
              split == result.graph.node(edge.v).pos)
            continue;  // equivalent to a node attachment, already tried
          Candidate c{Candidate::Kind::kEdgeAttach, graph::kInvalidNode, e, split, pin};
          graph::RoutingGraph trial = result.graph;
          std::vector<std::size_t> trial_pin = result.node_pin;
          apply_candidate(trial, trial_pin, net, c);
          const double objective = tree_objective(trial, trial_pin, tech,
                                                  options.criticality);
          if (objective < best_objective) {
            best_objective = objective;
            best = c;
            found = true;
          }
        }
      }
    }

    if (!found) throw std::logic_error("elmore_routing_tree: no candidate found");
    apply_candidate(result.graph, result.node_pin, net, best);
    std::erase(unattached, best.pin);
  }

  // The greedy growth attaches one pin per round to the connected tree,
  // so the result must be a tree spanning every pin, with the node->pin
  // map covering exactly the nodes.
  NTR_CHECK(result.node_pin.size() == result.graph.node_count());
  NTR_CHECK(result.graph.is_tree());
  NTR_DCHECK(check::require(
      graph::validate_graph(result.graph,
                            {.require_source = true, .require_connected = true}),
      "elmore_routing_tree postcondition"));
  return result;
}

}  // namespace ntr::route
