#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "delay/evaluator.h"
#include "graph/routing_graph.h"

namespace ntr::route {

struct EdgeSwapOptions {
  double min_relative_improvement = 1e-9;
  std::size_t max_swaps = std::numeric_limits<std::size_t>::max();
};

struct EdgeSwapResult {
  graph::RoutingGraph graph;
  double initial_delay = 0.0;
  double final_delay = 0.0;
  std::size_t swaps = 0;
};

/// Steepest-descent 1-exchange local search over spanning TREES: starting
/// from any spanning tree, repeatedly remove one tree edge and reconnect
/// the two components with the non-tree pin pair that minimizes the delay
/// objective, until no exchange improves it. The classical iterative-
/// improvement baseline sitting between one-shot constructions (MST/ERT)
/// and the paper's non-tree LDRG: it explores TREE topology space, so
/// comparing it against LDRG isolates how much of LDRG's win comes from
/// cycles rather than from topology search per se
/// (bench/ablation_tree_vs_graph).
EdgeSwapResult edge_swap_search(const graph::RoutingGraph& initial_tree,
                                const delay::DelayEvaluator& evaluator,
                                const EdgeSwapOptions& options = {});

}  // namespace ntr::route
