#include "route/constructions.h"

#include <limits>
#include <stdexcept>
#include <vector>

namespace ntr::route {

graph::RoutingGraph star_routing(const graph::Net& net) {
  graph::RoutingGraph g(net);
  for (graph::NodeId n = 1; n < g.node_count(); ++n) g.add_edge(g.source(), n);
  return g;
}

graph::RoutingGraph prim_dijkstra_routing(const graph::Net& net, double c) {
  if (c < 0.0 || c > 1.0)
    throw std::invalid_argument("prim_dijkstra_routing: c must lie in [0,1]");
  graph::RoutingGraph g(net);
  const std::size_t n = g.node_count();

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<bool> in_tree(n, false);
  std::vector<double> pathlength(n, 0.0);  // wire length source -> node, for tree nodes
  std::vector<double> best_key(n, kInf);
  std::vector<graph::NodeId> best_parent(n, 0);

  in_tree[0] = true;
  const auto dist = [&](graph::NodeId a, graph::NodeId b) {
    return geom::manhattan_distance(g.node(a).pos, g.node(b).pos);
  };
  for (graph::NodeId v = 1; v < n; ++v) best_key[v] = dist(0, v);

  for (std::size_t step = 1; step < n; ++step) {
    graph::NodeId pick = n;
    double pick_key = kInf;
    for (graph::NodeId v = 0; v < n; ++v) {
      if (!in_tree[v] && best_key[v] < pick_key) {
        pick = v;
        pick_key = best_key[v];
      }
    }
    const graph::NodeId parent = best_parent[pick];
    in_tree[pick] = true;
    pathlength[pick] = pathlength[parent] + dist(parent, pick);
    g.add_edge(parent, pick);
    for (graph::NodeId v = 0; v < n; ++v) {
      if (in_tree[v]) continue;
      const double key = c * pathlength[pick] + dist(pick, v);
      if (key < best_key[v]) {
        best_key[v] = key;
        best_parent[v] = pick;
      }
    }
  }
  return g;
}

}  // namespace ntr::route
