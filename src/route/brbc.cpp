#include "route/brbc.h"

#include <stdexcept>
#include <vector>

#include "graph/paths.h"

namespace ntr::route {

graph::RoutingGraph brbc_routing(const graph::Net& net, double epsilon) {
  if (epsilon < 0.0)
    throw std::invalid_argument("brbc_routing: epsilon must be non-negative");
  net.validate();

  // Q starts as the MST.
  graph::RoutingGraph q = graph::mst_routing(net);
  const graph::NodeId source = q.source();

  const auto direct = [&](graph::NodeId v) {
    return geom::manhattan_distance(q.node(source).pos, q.node(v).pos);
  };

  // Depth-first (Euler) tour of the MST, accumulating traversed length.
  // Shortcuts added to q do not participate in the tour, so snapshot the
  // MST adjacency first.
  std::vector<std::vector<std::pair<graph::NodeId, double>>> adj(q.node_count());
  for (const graph::GraphEdge& e : q.edges()) {
    adj[e.u].emplace_back(e.v, e.length);
    adj[e.v].emplace_back(e.u, e.length);
  }

  struct Frame {
    graph::NodeId node;
    std::size_t next = 0;
  };
  std::vector<Frame> stack{{source, 0}};
  std::vector<bool> visited(q.node_count(), false);
  visited[source] = true;
  double running = 0.0;

  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next >= adj[f.node].size()) {
      const graph::NodeId done = f.node;
      stack.pop_back();
      // Backtracking along the tree edge is part of the Euler tour and
      // contributes to the accumulated length.
      if (!stack.empty()) {
        for (const auto& [nbr, len] : adj[stack.back().node]) {
          if (nbr == done) {
            running += len;
            break;
          }
        }
      }
      continue;
    }
    const auto [child, len] = adj[f.node][f.next++];
    if (visited[child]) continue;
    visited[child] = true;
    running += len;
    if (running >= epsilon * direct(child)) {
      q.add_edge(source, child);  // the geometric shortest path is direct
      running = 0.0;
    }
    stack.push_back({child, 0});
  }

  // Final tree: shortest paths within Q from the source.
  const graph::ShortestPaths sp = graph::shortest_paths(q, source);
  graph::RoutingGraph tree(net);
  for (graph::NodeId v = 1; v < tree.node_count(); ++v) {
    if (sp.parent[v] == graph::kInvalidNode)
      throw std::logic_error("brbc_routing: disconnected shortcut graph");
    tree.add_edge(sp.parent[v], v);
  }
  return tree;
}

}  // namespace ntr::route
