#pragma once

#include "graph/net.h"
#include "graph/routing_graph.h"

namespace ntr::route {

/// Bounded-Radius Bounded-Cost routing tree (Cong, Kahng, Robins,
/// Sarrafzadeh, Wong -- "Provably Good Performance-Driven Global
/// Routing", the paper's ref [8]).
///
/// Walk a depth-first tour of the MST accumulating traversed wirelength;
/// whenever the accumulated length since the last shortcut reaches
/// epsilon * d(source, v), splice in the direct source-v wire and reset.
/// The output is the shortest-path tree of the MST-plus-shortcuts graph,
/// which provably satisfies
///     radius  <= (1 + epsilon) * max_v d(source, v)
///     cost    <= (1 + 2/epsilon) * cost(MST).
/// epsilon -> infinity degenerates to the MST; epsilon = 0 to the SPT.
///
/// This is the third classical cost/radius trade-off baseline (next to
/// prim_dijkstra_routing and the ERT family) that the non-tree LDRG
/// routings are measured against.
graph::RoutingGraph brbc_routing(const graph::Net& net, double epsilon);

}  // namespace ntr::route
