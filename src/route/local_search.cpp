#include "route/local_search.h"

#include <stdexcept>

#include "graph/union_find.h"

namespace ntr::route {

namespace {

/// Component labels of the tree with edge `removed` deleted.
std::vector<std::size_t> split_components(const graph::RoutingGraph& tree,
                                          graph::EdgeId removed) {
  graph::UnionFind uf(tree.node_count());
  for (graph::EdgeId e = 0; e < tree.edge_count(); ++e) {
    if (e == removed) continue;
    uf.unite(tree.edge(e).u, tree.edge(e).v);
  }
  std::vector<std::size_t> label(tree.node_count());
  for (graph::NodeId n = 0; n < tree.node_count(); ++n) label[n] = uf.find(n);
  return label;
}

}  // namespace

EdgeSwapResult edge_swap_search(const graph::RoutingGraph& initial_tree,
                                const delay::DelayEvaluator& evaluator,
                                const EdgeSwapOptions& options) {
  if (!initial_tree.is_tree())
    throw std::invalid_argument("edge_swap_search: input must be a spanning tree");

  EdgeSwapResult result;
  result.graph = initial_tree;
  result.initial_delay = evaluator.max_delay(result.graph);
  result.final_delay = result.initial_delay;

  while (result.swaps < options.max_swaps) {
    const double current = result.final_delay;
    const double accept_below = current * (1.0 - options.min_relative_improvement);

    double best_delay = accept_below;
    graph::EdgeId best_remove = graph::kInvalidEdge;
    graph::NodeId best_u = graph::kInvalidNode;
    graph::NodeId best_v = graph::kInvalidNode;

    for (graph::EdgeId e = 0; e < result.graph.edge_count(); ++e) {
      const std::vector<std::size_t> label = split_components(result.graph, e);
      const graph::GraphEdge removed = result.graph.edge(e);
      for (graph::NodeId u = 0; u < result.graph.node_count(); ++u) {
        for (graph::NodeId v = u + 1; v < result.graph.node_count(); ++v) {
          if (label[u] == label[v]) continue;          // would not reconnect
          if (u == removed.u && v == removed.v) continue;  // same edge back
          if (u == removed.v && v == removed.u) continue;
          graph::RoutingGraph trial = result.graph;
          trial.remove_edge(e);
          trial.add_edge(u, v);
          const double t = evaluator.max_delay(trial);
          if (t < best_delay) {
            best_delay = t;
            best_remove = e;
            best_u = u;
            best_v = v;
          }
        }
      }
    }

    if (best_remove == graph::kInvalidEdge) break;
    result.graph.remove_edge(best_remove);
    result.graph.add_edge(best_u, best_v);
    result.final_delay = best_delay;
    ++result.swaps;
  }
  return result;
}

}  // namespace ntr::route
