#pragma once

#include <cstddef>
#include <vector>

#include "graph/net.h"
#include "graph/routing_graph.h"
#include "spice/technology.h"

namespace ntr::route {

inline constexpr std::size_t kNoPin = static_cast<std::size_t>(-1);

struct ErtOptions {
  /// SERT: also consider attaching a sink to the closest point of an
  /// existing edge's bounding box, introducing a Steiner point.
  bool steiner = false;

  /// CSORG-style objective (paper Section 5.1): minimize
  /// sum_i criticality[i] * t(n_i) instead of max_i t(n_i).
  /// Indexed by net sink (pins[1..k] -> criticality[0..k-1]); empty means
  /// the classical minimize-the-max ERT objective.
  std::vector<double> criticality;
};

struct ErtResult {
  graph::RoutingGraph graph;
  /// For every graph node, the net pin index it realizes (0 = source), or
  /// kNoPin for Steiner points.
  std::vector<std::size_t> node_pin;
};

/// Elmore Routing Tree construction (Boese-Kahng-McCoy-Robins, paper ref
/// [4]): grow from the source, at each step attaching the unconnected sink
/// at the tree position that minimizes the Elmore objective of the
/// resulting tree. Near-optimal for Elmore delay (within ~2% on average,
/// per [4]) -- the strongest tree baseline the paper compares against, and
/// the starting point of the ERT-seeded LDRG experiment (Table 7).
ErtResult elmore_routing_tree(const graph::Net& net, const spice::Technology& tech,
                              const ErtOptions& options = {});

}  // namespace ntr::route
