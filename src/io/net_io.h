#pragma once

#include <string>
#include <string_view>

#include "graph/net.h"
#include "graph/routing_graph.h"
#include "runtime/status.h"

namespace ntr::io {

/// Plain-text net format (one pin per line, first pin is the source):
///
///   # anything after '#' is a comment
///   pin 1250.0 3400.5
///   pin 9800.0 120.0
///
/// Coordinates are micrometers, matching the Table-1 technology.
graph::Net read_net(std::string_view text);
std::string write_net(const graph::Net& net);

/// Plain-text routing format -- a net plus its wires (and any Steiner
/// nodes), sufficient to reload a routing produced by any algorithm here:
///
///   # ntr routing v1
///   node 0.0 0.0 source
///   node 5000.0 100.0 sink
///   node 5000.0 0.0 steiner
///   edge 0 2
///   edge 2 1 2.0        # optional trailing wire width
graph::RoutingGraph read_routing(std::string_view text);
std::string write_routing(const graph::RoutingGraph& g);

/// File helpers; throw ntr::runtime::NtrError (StatusCode::kIoError) on
/// I/O failure.
graph::Net read_net_file(const std::string& path);
graph::RoutingGraph read_routing_file(const std::string& path);
void write_net_file(const std::string& path, const graph::Net& net);
void write_routing_file(const std::string& path, const graph::RoutingGraph& g);

/// Non-throwing boundary variants for batch drivers: every parse/IO
/// failure above comes back as a Status instead (malformed text --
/// including NaN/inf coordinates, duplicate edges, edges before nodes,
/// unknown node kinds -- maps to kBadInput; file failures to kIoError).
[[nodiscard]] runtime::StatusOr<graph::Net> try_read_net(std::string_view text);
[[nodiscard]] runtime::StatusOr<graph::RoutingGraph> try_read_routing(
    std::string_view text);
[[nodiscard]] runtime::StatusOr<graph::Net> try_read_net_file(
    const std::string& path);
[[nodiscard]] runtime::StatusOr<graph::RoutingGraph> try_read_routing_file(
    const std::string& path);

}  // namespace ntr::io
