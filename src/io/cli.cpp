#include "io/cli.h"

#include <stdexcept>

namespace ntr::io {

core::Strategy strategy_from_name(const std::string& name) {
  if (name == "mst") return core::Strategy::kMst;
  if (name == "star" || name == "spt") return core::Strategy::kStar;
  if (name == "steiner") return core::Strategy::kSteinerTree;
  if (name == "ert") return core::Strategy::kErt;
  if (name == "sert") return core::Strategy::kSert;
  if (name == "ldrg") return core::Strategy::kLdrg;
  if (name == "sldrg") return core::Strategy::kSldrg;
  if (name == "ert-ldrg") return core::Strategy::kErtLdrg;
  if (name == "h1") return core::Strategy::kH1;
  if (name == "h2") return core::Strategy::kH2;
  if (name == "h3") return core::Strategy::kH3;
  throw std::invalid_argument("unknown --strategy '" + name +
                              "' (try mst|star|steiner|ert|sert|ldrg|sldrg|"
                              "ert-ldrg|h1|h2|h3)");
}

std::string cli_usage() {
  return R"(ntr_route -- route one signal net with the Non-Tree Routing library

input (choose one):
  --net FILE          read a .net file ("pin <x> <y>" per line, first = source)
  --random N          generate N random pins on the 10x10mm Table-1 layout
  --seed S            RNG seed for --random (default 1)

algorithm:
  --strategy NAME     mst|star|steiner|ert|sert|ldrg|sldrg|ert-ldrg|h1|h2|h3
                      (default ldrg)
  --pd C              Prim-Dijkstra trade-off with parameter C in [0,1]
  --brbc EPS          BRBC with radius slack EPS >= 0
  --max-edges K       cap on extra LDRG edges
  --threads N         LDRG candidate-evaluation threads (0 = all cores,
                      default 1); the routing is bit-identical for any N
  --evaluator NAME    transient|elmore|graph-elmore|d2m (default transient)

fault tolerance:
  --deadline-ms MS    wall-clock budget for the solve (0 = unbounded); the
                      LDRG rounds and the transient march poll it
  --on-error POLICY   fail|degrade|skip (default degrade): what to do when
                      the solve fails or times out -- degrade retries with
                      the graph-Elmore evaluator, then ships the seed tree
  --report-json FILE  write the per-net outcome report (disposition, rung,
                      failure status) as JSON

outputs:
  --deck FILE.sp      export the routing as a SPICE deck
  --spef FILE.spef    export the routing's parasitics as SPEF
  --svg FILE.svg      render the routing as SVG
  --routing FILE      dump the routing in the ntr text format
  --report            print per-sink delays
  --metrics           print the routing quality card (radius, detour, ...)
  --help              this text

exit codes:
  0  success
  1  internal error (contract violation or unclassified failure)
  2  usage error (bad command line)
  3  input error (unreadable or malformed net/routing file)
  4  numerical failure or deadline/cancellation (singular matrix,
     non-finite waveform, timeout) that the --on-error policy let escape
)";
}

int exit_code_for(const runtime::Status& status) {
  switch (status.code()) {
    case runtime::StatusCode::kOk:
      return kExitOk;
    case runtime::StatusCode::kBadInput:
    case runtime::StatusCode::kIoError:
    case runtime::StatusCode::kUnavailable:
    case runtime::StatusCode::kConnectionReset:
      return kExitInput;
    case runtime::StatusCode::kSingular:
    case runtime::StatusCode::kNonFinite:
    case runtime::StatusCode::kTimeout:
    case runtime::StatusCode::kCancelled:
      return kExitNumerical;
    case runtime::StatusCode::kResourceExhausted:
    case runtime::StatusCode::kInternal:
      return kExitInternal;
  }
  return kExitInternal;
}

namespace {

double parse_double(const std::string& flag, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument("");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad numeric value for " + flag + ": '" + value + "'");
  }
}

std::uint64_t parse_uint(const std::string& flag, const std::string& value) {
  const double v = parse_double(flag, value);
  if (v < 0 || v != static_cast<double>(static_cast<std::uint64_t>(v)))
    throw std::invalid_argument(flag + " expects a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

}  // namespace

CliOptions parse_cli(std::span<const std::string> args) {
  CliOptions opts;
  const auto next = [&](std::size_t& i, const std::string& flag) -> const std::string& {
    if (i + 1 >= args.size())
      throw std::invalid_argument(flag + " expects a value");
    return args[++i];
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (arg == "--help" || arg == "-h") {
      opts.help = true;
    } else if (arg == "--net") {
      opts.net_file = next(i, arg);
    } else if (arg == "--random") {
      opts.random_pins = parse_uint(arg, next(i, arg));
    } else if (arg == "--seed") {
      opts.seed = parse_uint(arg, next(i, arg));
    } else if (arg == "--strategy") {
      opts.strategy = strategy_from_name(next(i, arg));
    } else if (arg == "--evaluator") {
      opts.evaluator = next(i, arg);
      if (opts.evaluator != "transient" && opts.evaluator != "elmore" &&
          opts.evaluator != "graph-elmore" && opts.evaluator != "d2m")
        throw std::invalid_argument("unknown --evaluator '" + opts.evaluator + "'");
    } else if (arg == "--max-edges") {
      opts.max_edges = parse_uint(arg, next(i, arg));
    } else if (arg == "--threads") {
      opts.threads = parse_uint(arg, next(i, arg));
    } else if (arg == "--pd") {
      opts.pd_c = parse_double(arg, next(i, arg));
      if (opts.pd_c < 0.0 || opts.pd_c > 1.0)
        throw std::invalid_argument("--pd expects a value in [0,1]");
    } else if (arg == "--brbc") {
      opts.brbc_epsilon = parse_double(arg, next(i, arg));
      if (opts.brbc_epsilon < 0.0)
        throw std::invalid_argument("--brbc expects a non-negative value");
    } else if (arg == "--deadline-ms") {
      opts.deadline_ms = parse_double(arg, next(i, arg));
      if (opts.deadline_ms < 0.0)
        throw std::invalid_argument("--deadline-ms expects a non-negative value");
    } else if (arg == "--on-error") {
      const std::string& name = next(i, arg);
      const std::optional<core::OnError> policy = core::on_error_from_name(name);
      if (!policy)
        throw std::invalid_argument("unknown --on-error '" + name +
                                    "' (try fail|degrade|skip)");
      opts.on_error = *policy;
    } else if (arg == "--report-json") {
      opts.report_json_path = next(i, arg);
    } else if (arg == "--deck") {
      opts.deck_path = next(i, arg);
    } else if (arg == "--svg") {
      opts.svg_path = next(i, arg);
    } else if (arg == "--routing") {
      opts.routing_path = next(i, arg);
    } else if (arg == "--spef") {
      opts.spef_path = next(i, arg);
    } else if (arg == "--metrics") {
      opts.metrics = true;
    } else if (arg == "--report") {
      opts.per_sink_report = true;
    } else {
      throw std::invalid_argument("unknown argument '" + arg + "' (see --help)");
    }
  }

  if (!opts.help) {
    const bool has_file = !opts.net_file.empty();
    const bool has_random = opts.random_pins > 0;
    if (has_file == has_random)
      throw std::invalid_argument("choose exactly one of --net and --random");
    if (has_random && opts.random_pins < 2)
      throw std::invalid_argument("--random expects at least 2 pins");
    if (opts.pd_c >= 0.0 && opts.brbc_epsilon >= 0.0)
      throw std::invalid_argument("--pd and --brbc are mutually exclusive");
  }
  return opts;
}

}  // namespace ntr::io
