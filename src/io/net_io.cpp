#include "io/net_io.h"

#include <cmath>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "check/faultinject.h"
#include "geom/point.h"
#include "runtime/status.h"

namespace ntr::io {

namespace {

/// Strips comments and splits a line into whitespace tokens.
std::vector<std::string> tokenize(std::string line) {
  if (const std::size_t hash = line.find('#'); hash != std::string::npos)
    line.erase(hash);
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

double parse_coord(const std::string& token, const std::string& context) {
  std::size_t used = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &used);
  } catch (const std::exception&) {
    throw std::invalid_argument("net_io: bad number '" + token + "' in " + context);
  }
  if (used != token.size())
    throw std::invalid_argument("net_io: bad number '" + token + "' in " + context);
  // std::stod happily parses "nan" and "inf"; a non-finite coordinate or
  // width would poison every downstream distance and matrix entry, so
  // reject it at the door.
  if (!std::isfinite(value))
    throw std::invalid_argument("net_io: non-finite number '" + token + "' in " +
                                context);
  return value;
}

/// Parses a node id for an `edge` directive. The range and integrality
/// checks must precede the narrowing cast: converting a negative or
/// out-of-range double to the unsigned NodeId is undefined behavior, and
/// "1.9" silently naming node 1 would mask a malformed file.
graph::NodeId parse_node_id(const std::string& token, const std::string& context,
                            std::size_t node_count) {
  const double value = parse_coord(token, context);
  if (value < 0.0 || value >= static_cast<double>(node_count) ||
      value != std::floor(value))
    throw std::invalid_argument("net_io: bad node id '" + token + "' in " +
                                context);
  return static_cast<graph::NodeId>(value);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw runtime::NtrError(runtime::StatusCode::kIoError,
                            "net_io: cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out)
    throw runtime::NtrError(runtime::StatusCode::kIoError,
                            "net_io: cannot open " + path);
  out << content;
  if (!out)
    throw runtime::NtrError(runtime::StatusCode::kIoError,
                            "net_io: write failed for " + path);
}

}  // namespace

graph::Net read_net(std::string_view text) {
  graph::Net net;
  std::istringstream in{std::string(text)};
  std::string line;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] != "pin" || tokens.size() != 3)
      throw std::invalid_argument("net_io: expected 'pin <x> <y>', got: " + line);
    net.pins.push_back(
        {parse_coord(tokens[1], line), parse_coord(tokens[2], line)});
  }
  net.validate();
  return net;
}

std::string write_net(const graph::Net& net) {
  std::ostringstream out;
  out << "# ntr net v1 (" << net.size() << " pins; first pin is the source)\n";
  out.precision(12);
  for (const geom::Point& p : net.pins) out << "pin " << p.x << ' ' << p.y << "\n";
  return out.str();
}

graph::RoutingGraph read_routing(std::string_view text) {
  graph::RoutingGraph g;
  std::istringstream in{std::string(text)};
  std::string line;
  bool nodes_done = false;
  while (std::getline(in, line)) {
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "node") {
      if (nodes_done)
        throw std::invalid_argument("net_io: node lines must precede edge lines");
      if (tokens.size() != 4)
        throw std::invalid_argument("net_io: expected 'node <x> <y> <kind>': " + line);
      graph::NodeKind kind;
      if (tokens[3] == "source") {
        kind = graph::NodeKind::kSource;
      } else if (tokens[3] == "sink") {
        kind = graph::NodeKind::kSink;
      } else if (tokens[3] == "steiner") {
        kind = graph::NodeKind::kSteiner;
      } else {
        throw std::invalid_argument("net_io: unknown node kind: " + tokens[3]);
      }
      g.add_node({parse_coord(tokens[1], line), parse_coord(tokens[2], line)}, kind);
    } else if (tokens[0] == "edge") {
      nodes_done = true;
      if (tokens.size() != 3 && tokens.size() != 4)
        throw std::invalid_argument("net_io: expected 'edge <u> <v> [width]': " + line);
      const graph::NodeId u = parse_node_id(tokens[1], line, g.node_count());
      const graph::NodeId v = parse_node_id(tokens[2], line, g.node_count());
      // RoutingGraph::add_edge silently dedupes, which would mask a
      // malformed file; a repeated edge line is always an input error.
      if (g.has_edge(u, v))
        throw std::invalid_argument("net_io: duplicate edge: " + line);
      const graph::EdgeId e = g.add_edge(u, v);
      if (tokens.size() == 4) g.set_edge_width(e, parse_coord(tokens[3], line));
    } else {
      throw std::invalid_argument("net_io: unknown directive: " + line);
    }
  }
  if (g.node_count() == 0)
    throw std::invalid_argument("net_io: routing file contains no nodes");
  if (g.node(0).kind != graph::NodeKind::kSource)
    throw std::invalid_argument("net_io: first node must be the source");
  return g;
}

std::string write_routing(const graph::RoutingGraph& g) {
  std::ostringstream out;
  out << "# ntr routing v1 (" << g.node_count() << " nodes, " << g.edge_count()
      << " edges)\n";
  out.precision(12);
  for (const graph::GraphNode& n : g.nodes()) {
    const char* kind = n.kind == graph::NodeKind::kSource  ? "source"
                       : n.kind == graph::NodeKind::kSink  ? "sink"
                                                           : "steiner";
    out << "node " << n.pos.x << ' ' << n.pos.y << ' ' << kind << "\n";
  }
  for (const graph::GraphEdge& e : g.edges()) {
    out << "edge " << e.u << ' ' << e.v;
    if (e.width != 1.0) out << ' ' << e.width;
    out << "\n";
  }
  return out.str();
}

graph::Net read_net_file(const std::string& path) { return read_net(read_file(path)); }

graph::RoutingGraph read_routing_file(const std::string& path) {
  return read_routing(read_file(path));
}

void write_net_file(const std::string& path, const graph::Net& net) {
  write_file(path, write_net(net));
}

void write_routing_file(const std::string& path, const graph::RoutingGraph& g) {
  write_file(path, write_routing(g));
}

runtime::StatusOr<graph::Net> try_read_net(std::string_view text) {
  try {
    NTR_FAULT_POINT(kIoNetParse);
    return read_net(text);
  } catch (const std::exception& e) {
    return runtime::exception_to_status(e);
  }
}

runtime::StatusOr<graph::RoutingGraph> try_read_routing(std::string_view text) {
  try {
    return read_routing(text);
  } catch (const std::exception& e) {
    return runtime::exception_to_status(e);
  }
}

runtime::StatusOr<graph::Net> try_read_net_file(const std::string& path) {
  try {
    return read_net_file(path);
  } catch (const std::exception& e) {
    return runtime::exception_to_status(e);
  }
}

runtime::StatusOr<graph::RoutingGraph> try_read_routing_file(
    const std::string& path) {
  try {
    return read_routing_file(path);
  } catch (const std::exception& e) {
    return runtime::exception_to_status(e);
  }
}

}  // namespace ntr::io
