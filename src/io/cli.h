#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/resilience.h"
#include "core/solver.h"
#include "runtime/status.h"

namespace ntr::io {

/// Options of the `ntr_route` command-line tool. Parsing lives in the
/// library so it is unit-testable; the tool's main() only wires parsed
/// options to library calls.
struct CliOptions {
  // Input: exactly one of net_file / random_pins.
  std::string net_file;
  std::size_t random_pins = 0;
  std::uint64_t seed = 1;

  core::Strategy strategy = core::Strategy::kLdrg;
  std::string evaluator = "transient";  // transient|elmore|graph-elmore|d2m

  // Strategy-specific knobs.
  std::size_t max_edges = static_cast<std::size_t>(-1);  // LDRG family
  /// Candidate-evaluation threads for the LDRG family (0 = all hardware
  /// threads). Output is bit-identical for every value.
  std::size_t threads = 1;
  double pd_c = -1.0;        ///< >=0 switches strategy to Prim-Dijkstra(c)
  double brbc_epsilon = -1;  ///< >=0 switches strategy to BRBC(epsilon)

  // Fault tolerance.
  /// Wall-clock budget for the solve in milliseconds; 0 = unbounded.
  double deadline_ms = 0.0;
  /// What to do when the solve fails or times out: fail (exit non-zero),
  /// degrade (walk the evaluator/seed-tree ladder), skip (drop the net).
  core::OnError on_error = core::OnError::kDegrade;
  /// Write the per-net outcome report (JSON) here; empty = no report.
  std::string report_json_path;

  // Outputs.
  std::string deck_path;
  std::string svg_path;
  std::string routing_path;
  std::string spef_path;
  bool per_sink_report = false;
  bool metrics = false;
  bool help = false;
};

/// Parses argv-style arguments (without the program name). Throws
/// std::invalid_argument with a user-readable message on bad input.
CliOptions parse_cli(std::span<const std::string> args);

/// The --help text.
std::string cli_usage();

/// Maps a --strategy name to the solver enum; throws on unknown names.
core::Strategy strategy_from_name(const std::string& name);

/// Process exit codes shared by the tools (documented in --help). Distinct
/// codes let scripts tell a usage mistake from a bad input file from a
/// numerical/timeout failure without parsing stderr.
inline constexpr int kExitOk = 0;        ///< success
inline constexpr int kExitInternal = 1;  ///< contract violation / unclassified
inline constexpr int kExitUsage = 2;     ///< bad command line
inline constexpr int kExitInput = 3;     ///< unreadable or malformed input
inline constexpr int kExitNumerical = 4; ///< singular/non-finite/timeout/cancel

/// Maps a boundary Status to the exit-code convention above.
[[nodiscard]] int exit_code_for(const runtime::Status& status);

}  // namespace ntr::io
