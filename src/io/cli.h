#pragma once

#include <optional>
#include <span>
#include <string>

#include "core/solver.h"

namespace ntr::io {

/// Options of the `ntr_route` command-line tool. Parsing lives in the
/// library so it is unit-testable; the tool's main() only wires parsed
/// options to library calls.
struct CliOptions {
  // Input: exactly one of net_file / random_pins.
  std::string net_file;
  std::size_t random_pins = 0;
  std::uint64_t seed = 1;

  core::Strategy strategy = core::Strategy::kLdrg;
  std::string evaluator = "transient";  // transient|elmore|graph-elmore|d2m

  // Strategy-specific knobs.
  std::size_t max_edges = static_cast<std::size_t>(-1);  // LDRG family
  /// Candidate-evaluation threads for the LDRG family (0 = all hardware
  /// threads). Output is bit-identical for every value.
  std::size_t threads = 1;
  double pd_c = -1.0;        ///< >=0 switches strategy to Prim-Dijkstra(c)
  double brbc_epsilon = -1;  ///< >=0 switches strategy to BRBC(epsilon)

  // Outputs.
  std::string deck_path;
  std::string svg_path;
  std::string routing_path;
  std::string spef_path;
  bool per_sink_report = false;
  bool metrics = false;
  bool help = false;
};

/// Parses argv-style arguments (without the program name). Throws
/// std::invalid_argument with a user-readable message on bad input.
CliOptions parse_cli(std::span<const std::string> args);

/// The --help text.
std::string cli_usage();

/// Maps a --strategy name to the solver enum; throws on unknown names.
core::Strategy strategy_from_name(const std::string& name);

}  // namespace ntr::io
