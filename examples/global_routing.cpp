// Multi-net global routing with congestion, and where non-tree routing
// fits in a real flow.
//
//   1. route a batch of random nets on the capacitated GCell grid
//      (congestion-aware maze routing + rip-up-and-reroute),
//   2. convert the slowest net's grid routing into an electrical
//      RoutingGraph and measure it,
//   3. augment that one net with LDRG wires and compare.
//
//   $ ./global_routing [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "grid/global_router.h"
#include "spice/units.h"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2;
  const ntr::spice::Technology tech = ntr::spice::kTable1Technology;
  const ntr::delay::TransientEvaluator measure(tech);

  // 10x10mm die, 250um GCells, 8 wires per boundary.
  ntr::grid::Grid grid(40, 40, 250.0, 8);
  // A routing blockage (macro) in the middle of the die.
  grid.block_rect({16, 14}, {24, 20});

  // Sample nets whose pins avoid the macro and do not collide on a GCell
  // (in a real flow the placer guarantees this).
  ntr::expt::NetGenerator gen(seed);
  std::vector<ntr::graph::Net> nets;
  while (nets.size() < 20) {
    ntr::graph::Net candidate = gen.random_net(5 + (nets.size() % 4));
    bool valid = true;
    std::vector<std::size_t> cells;
    for (const ntr::geom::Point& p : candidate.pins) {
      const ntr::grid::Cell c = grid.snap(p);
      if (grid.blocked(c)) valid = false;
      cells.push_back(grid.index(c));
    }
    std::sort(cells.begin(), cells.end());
    if (std::adjacent_find(cells.begin(), cells.end()) != cells.end()) valid = false;
    if (valid) nets.push_back(std::move(candidate));
  }

  const ntr::grid::GlobalRouteResult result = ntr::grid::route_nets(grid, nets);
  std::printf("global routing of %zu nets on a 40x40 grid (capacity 8):\n",
              nets.size());
  std::printf("  total wirelength : %.0f um\n", result.total_wirelength_um);
  std::printf("  boundary overflow: %zu (after %u rip-up pass%s)\n", result.overflow,
              result.passes, result.passes == 1 ? "" : "es");
  std::printf("  max boundary use : %u / %u\n", result.max_usage, grid.capacity());

  // Find the slowest net electrically.
  double worst_delay = 0.0;
  std::size_t worst_net = 0;
  ntr::graph::RoutingGraph worst_graph;
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const ntr::graph::RoutingGraph g =
        ntr::grid::to_routing_graph(grid, nets[i], result.nets[i]);
    const double d = measure.max_delay(g);
    if (d > worst_delay) {
      worst_delay = d;
      worst_net = i;
      worst_graph = g;
    }
  }
  std::printf("\nslowest net: #%zu, %zu pins, %s through %.0f um of routed wire\n",
              worst_net, nets[worst_net].size(),
              ntr::spice::format_time(worst_delay).c_str(),
              worst_graph.total_wirelength());

  // Non-tree augmentation of just that net.
  const ntr::core::LdrgResult ldrg_res = ntr::core::ldrg(worst_graph, measure);
  std::printf("after LDRG augmentation (%zu extra wires): %s  (%.1f%% faster, +%.0f um)\n",
              ldrg_res.added_edges(),
              ntr::spice::format_time(ldrg_res.final_objective).c_str(),
              100.0 * (1.0 - ldrg_res.final_objective / worst_delay),
              ldrg_res.final_cost - worst_graph.total_wirelength());

  std::printf(
      "\nThe grid router produces real (obstacle- and congestion-aware)\n"
      "topologies; LDRG then spends extra wires only on the nets where\n"
      "delay matters -- the deployment model the paper envisions.\n");
  return 0;
}
