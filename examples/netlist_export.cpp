// SPICE deck export: cross-validate this library against an external
// circuit simulator.
//
// Builds an MST and an LDRG routing for one net, expands both into the
// paper's circuit model (Table-1 parameters: step source, 100-ohm driver,
// distributed-RC wires, 15.3 fF sink loads), measures them with the
// in-repo transient engine, and writes ready-to-run SPICE decks so the
// same delays can be checked with SPICE/ngspice:
//
//   $ ./netlist_export [seed] > /dev/null   # decks land in ./mst.sp, ./ldrg.sp
//   $ ngspice -b mst.sp                     # (external, if available)

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "sim/transient.h"
#include "spice/deck_io.h"
#include "spice/graph_netlist.h"
#include "spice/units.h"

namespace {

double measure_and_export(const ntr::graph::RoutingGraph& g,
                          const ntr::spice::Technology& tech, const char* path) {
  const ntr::spice::GraphNetlist netlist = ntr::spice::build_netlist(g, tech);

  std::vector<ntr::spice::CircuitNode> watch;
  for (const ntr::graph::NodeId s : netlist.sink_graph_nodes)
    watch.push_back(netlist.graph_to_circuit[s]);

  ntr::sim::TransientSimulator sim(netlist.circuit);
  const auto report = sim.measure_crossings(watch, tech.threshold_fraction);

  const double horizon = 5.0 * report.max_crossing_s;
  const std::string deck =
      ntr::spice::write_deck(netlist.circuit, path, horizon / 2000.0, horizon);
  std::ofstream(path) << deck;

  std::printf("  %-8s: %zu nodes, %zu elements, max 50%% delay %s  -> %s\n", path,
              netlist.circuit.node_count(), netlist.circuit.elements().size(),
              ntr::spice::format_time(report.max_crossing_s).c_str(), path);
  return report.max_crossing_s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

  ntr::expt::NetGenerator generator(seed);
  const ntr::graph::Net net = generator.random_net(10);
  const ntr::spice::Technology tech = ntr::spice::kTable1Technology;
  const ntr::delay::TransientEvaluator measure(tech);

  const ntr::graph::RoutingGraph mst = ntr::graph::mst_routing(net);
  const ntr::core::LdrgResult ldrg_res = ntr::core::ldrg(mst, measure);

  std::printf("Exporting SPICE decks for a %zu-pin net (seed %llu):\n\n", net.size(),
              static_cast<unsigned long long>(seed));
  const double t_mst = measure_and_export(mst, tech, "mst.sp");
  const double t_ldrg = measure_and_export(ldrg_res.graph, tech, "ldrg.sp");

  std::printf("\nLDRG vs MST delay ratio: %.3f (%zu extra edges)\n", t_ldrg / t_mst,
              ldrg_res.added_edges());
  std::printf(
      "\nFeed the .sp files to any SPICE (e.g. `ngspice -b mst.sp`) and read\n"
      "the 50%%-threshold crossing of the slowest V(n*) -- it should match the\n"
      "delays above, since the decks contain the exact same linear network.\n");
  return 0;
}
