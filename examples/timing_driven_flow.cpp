// Timing-driven routing flow (the Section-5.1 story, end to end):
//
//   1. a small gate-level design with placed cells,
//   2. route every signal net as an MST and measure per-sink interconnect
//      delays with the transient engine,
//   3. static timing analysis -> per-pin slacks -> sink criticalities,
//   4. re-route the worst net with criticality-weighted non-tree LDRG
//      (the CSORG objective),
//   5. re-run STA and report the critical-path improvement.
//
//   $ ./timing_driven_flow

#include <cstdio>
#include <vector>

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "graph/routing_graph.h"
#include "spice/units.h"
#include "sta/timing_graph.h"

namespace {

using namespace ntr;

/// Placement of the example: a driver in the SW corner fans out to three
/// receivers; two of them feed a deep (slow) logic cone, one feeds a
/// shallow cone. Coordinates in um on the 10x10mm die.
struct PlacedNet {
  graph::Net net;
  sta::NetId sta_net;
  std::vector<sta::GateId> sink_gates;  // aligned with net sinks
};

}  // namespace

int main() {
  const spice::Technology tech = spice::kTable1Technology;
  const delay::TransientEvaluator measure(tech);

  // ---- the design -------------------------------------------------------
  sta::TimingGraph design;
  const sta::NetId pi = design.add_net("pi");
  const sta::NetId fanout = design.add_net("fanout");  // the net we route
  const sta::NetId deep_a = design.add_net("deep_a");
  const sta::NetId deep_b = design.add_net("deep_b");
  const sta::NetId shallow = design.add_net("shallow");
  const sta::NetId po_deep = design.add_net("po_deep");
  const sta::NetId po_shallow = design.add_net("po_shallow");

  design.add_gate("drv", 0.3e-9, {pi}, fanout);
  const sta::GateId rx_deep_a = design.add_gate("rx_deep_a", 0.5e-9, {fanout}, deep_a);
  const sta::GateId rx_deep_b = design.add_gate("rx_deep_b", 0.5e-9, {fanout}, deep_b);
  const sta::GateId rx_shallow =
      design.add_gate("rx_shallow", 0.2e-9, {fanout}, shallow);
  design.add_gate("cone_deep", 2.4e-9, {deep_a, deep_b}, po_deep);
  design.add_gate("cone_shallow", 0.3e-9, {shallow}, po_shallow);

  // ---- placement of the fanout net's pins -------------------------------
  PlacedNet placed;
  placed.net.pins = {{500, 500},     // driver output pin (source)
                     {9000, 1200},   // rx_deep_a -- far across the die
                     {8500, 7500},   // rx_deep_b -- far corner
                     {1500, 6500}};  // rx_shallow -- near column
  placed.sta_net = fanout;
  placed.sink_gates = {rx_deep_a, rx_deep_b, rx_shallow};

  const double clock_period = 5e-9;

  const auto apply_routing = [&](const graph::RoutingGraph& routing) {
    const std::vector<double> delays = measure.sink_delays(routing);
    for (std::size_t i = 0; i < placed.sink_gates.size(); ++i)
      design.set_interconnect_delay(placed.sta_net, placed.sink_gates[i], delays[i]);
    return delays;
  };

  // ---- pass 1: plain MST routing ----------------------------------------
  const graph::RoutingGraph mst = graph::mst_routing(placed.net);
  apply_routing(mst);
  const sta::TimingReport before = sta::analyze(design, clock_period);

  std::printf("pass 1 (MST routing of 'fanout'):\n");
  std::printf("  critical path delay : %s\n",
              spice::format_time(before.worst_arrival_s).c_str());
  std::printf("  worst slack         : %s\n",
              spice::format_time(before.worst_slack_s).c_str());

  // ---- pass 2: criticality-driven non-tree routing ----------------------
  const std::vector<double> alpha =
      sta::sink_criticalities(design, before, placed.sta_net);
  std::printf("\nsink criticalities from STA:");
  for (std::size_t i = 0; i < alpha.size(); ++i)
    std::printf("  %s=%.2f", design.gate_name(placed.sink_gates[i]).c_str(), alpha[i]);
  std::printf("\n\n");

  core::LdrgOptions opts;
  opts.criticality = alpha;
  const core::LdrgResult csorg = core::ldrg(mst, measure, opts);
  apply_routing(csorg.graph);
  const sta::TimingReport after = sta::analyze(design, clock_period);

  std::printf("pass 2 (CSORG-weighted LDRG, %zu extra wire%s):\n",
              csorg.added_edges(), csorg.added_edges() == 1 ? "" : "s");
  std::printf("  critical path delay : %s (was %s)\n",
              spice::format_time(after.worst_arrival_s).c_str(),
              spice::format_time(before.worst_arrival_s).c_str());
  std::printf("  worst slack         : %s (was %s)\n",
              spice::format_time(after.worst_slack_s).c_str(),
              spice::format_time(before.worst_slack_s).c_str());
  std::printf("  net wirelength      : %.0f um (was %.0f um)\n",
              csorg.final_cost, mst.total_wirelength());

  std::printf(
      "\nThe STA slack of each receiver decides how much the router spends\n"
      "on it: the deep-cone pins get the extra non-tree wires, the shallow\n"
      "pin keeps its cheap connection -- the paper's CSORG formulation.\n");
  return after.worst_slack_s >= before.worst_slack_s ? 0 : 1;
}
