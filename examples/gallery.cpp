// Strategy gallery: render one net routed by every construction in the
// library as SVG files (plus a delay/cost scoreboard), so the topologies
// can be compared visually the way the paper's figures do.
//
//   $ ./gallery [seed]     # writes gallery_<strategy>.svg

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/solver.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "route/brbc.h"
#include "route/constructions.h"
#include "spice/units.h"
#include "viz/svg.h"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 12;
  ntr::expt::NetGenerator gen(seed);
  const ntr::graph::Net net = gen.random_net(12);
  const ntr::spice::Technology tech = ntr::spice::kTable1Technology;
  const ntr::delay::TransientEvaluator measure(tech);

  struct Entry {
    std::string name;
    ntr::graph::RoutingGraph graph;
  };
  std::vector<Entry> gallery;

  for (const ntr::core::Strategy s :
       {ntr::core::Strategy::kMst, ntr::core::Strategy::kStar,
        ntr::core::Strategy::kSteinerTree, ntr::core::Strategy::kErt,
        ntr::core::Strategy::kSert, ntr::core::Strategy::kH3,
        ntr::core::Strategy::kLdrg, ntr::core::Strategy::kSldrg}) {
    gallery.push_back(
        {ntr::core::strategy_name(s), ntr::core::solve(net, s, measure).graph});
  }
  gallery.push_back({"PD(0.5)", ntr::route::prim_dijkstra_routing(net, 0.5)});
  gallery.push_back({"BRBC(0.5)", ntr::route::brbc_routing(net, 0.5)});

  std::printf("gallery of %zu routings for a %zu-pin net (seed %llu):\n\n",
              gallery.size(), net.size(), static_cast<unsigned long long>(seed));
  std::printf("  %-10s  %10s  %10s  %7s  file\n", "strategy", "delay", "wire",
              "cycles");
  for (const Entry& e : gallery) {
    std::string file = "gallery_" + e.name + ".svg";
    for (char& c : file)
      if (c == '/' || c == '(' || c == ')' || c == '.') c = '_';
    file = file.substr(0, file.size() - 4) + ".svg";  // restore extension

    ntr::viz::SvgOptions opts;
    opts.title = e.name;
    ntr::viz::write_svg(file, e.graph, opts);
    std::printf("  %-10s  %10s  %7.0f um  %7zu  %s\n", e.name.c_str(),
                ntr::spice::format_time(measure.max_delay(e.graph)).c_str(),
                e.graph.total_wirelength(), e.graph.cycle_count(), file.c_str());
  }
  std::printf(
      "\nOpen the SVGs side by side: the LDRG/SLDRG drawings show the red-\n"
      "free base tree plus the cycle-forming shortcuts the others lack.\n");
  return 0;
}
