// Clock distribution: skew reduction via non-tree wires.
//
// The non-tree idea prefigures clock meshes: extra wires between branches
// of a clock tree equalize (and reduce) the sink arrival times. This
// example distributes a clock to a 4x4 register array from a corner
// driver and compares MST, star, and non-tree routings on:
//   - max delay (the usual ORG objective),
//   - SKEW = max - min sink delay (the clock designer's objective,
//     optimized here by LDRG with uniform criticalities -- minimizing the
//     average pulls the laggards in).
//
//   $ ./clock_skew

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "route/constructions.h"
#include "spice/units.h"

namespace {

using namespace ntr;

struct Row {
  const char* name;
  double max_delay;
  double skew;
  double wirelength;
};

Row measure(const char* name, const graph::RoutingGraph& g,
            const delay::DelayEvaluator& eval) {
  const std::vector<double> d = eval.sink_delays(g);
  const auto [lo, hi] = std::minmax_element(d.begin(), d.end());
  return Row{name, *hi, *hi - *lo, g.total_wirelength()};
}

}  // namespace

int main() {
  const spice::Technology tech = spice::kTable1Technology;
  const delay::TransientEvaluator eval(tech);

  // Clock source at the die corner, sinks on a 4x4 register grid.
  graph::Net net;
  net.pins.push_back({0, 0});
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      net.pins.push_back({1500.0 + 2300.0 * c, 1500.0 + 2300.0 * r});

  std::vector<Row> rows;
  const graph::RoutingGraph mst = graph::mst_routing(net);
  rows.push_back(measure("MST", mst, eval));
  rows.push_back(measure("star/SPT", route::star_routing(net), eval));

  // ORG: minimize the max delay.
  const core::LdrgResult org = core::ldrg(mst, eval);
  rows.push_back(measure("LDRG (max)", org.graph, eval));

  // Mesh-like: uniform criticalities = minimize the average sink delay;
  // the added wires equalize the branches.
  core::LdrgOptions uniform;
  uniform.criticality.assign(net.sink_count(), 1.0);
  const core::LdrgResult mesh = core::ldrg(mst, eval, uniform);
  rows.push_back(measure("LDRG (avg)", mesh.graph, eval));

  std::printf("clock net: corner driver, 4x4 register array (17 pins)\n\n");
  std::printf("  %-11s  %10s  %10s  %10s\n", "routing", "max delay", "skew", "wire");
  for (const Row& r : rows) {
    std::printf("  %-11s  %10s  %10s  %7.0f um\n", r.name,
                spice::format_time(r.max_delay).c_str(),
                spice::format_time(r.skew).c_str(), r.wirelength);
  }

  std::printf(
      "\nExtra cycle-forming wires cut both the worst arrival AND the skew\n"
      "relative to the MST -- the same resistance-sharing that clock meshes\n"
      "exploit, obtained here by the paper's greedy edge addition.\n");
  return 0;
}
