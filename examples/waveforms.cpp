// Waveform comparison: dump the step response of the slowest sink under
// MST vs LDRG routing as plot-ready CSV, making the mechanism visible --
// the non-tree routing's waveform rises earlier because the extra wire
// cut the source-sink resistance.
//
//   $ ./waveforms [seed]           # writes waveforms.csv
//   then plot columns 2 (MST) and 3 (LDRG) against column 1 with any tool.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "sim/transient.h"
#include "sim/waveform_io.h"
#include "spice/graph_netlist.h"
#include "spice/units.h"

namespace {

/// Step response of the worst sink of a routing, resampled on a fixed
/// horizon so the two curves share a time axis.
std::vector<double> worst_sink_waveform(const ntr::graph::RoutingGraph& g,
                                        const ntr::spice::Technology& tech,
                                        double horizon_s, double step_s,
                                        std::vector<double>& time_axis) {
  const ntr::spice::GraphNetlist netlist = ntr::spice::build_netlist(g, tech);
  std::vector<ntr::spice::CircuitNode> watch;
  for (const ntr::graph::NodeId s : netlist.sink_graph_nodes)
    watch.push_back(netlist.graph_to_circuit[s]);

  ntr::sim::TransientOptions opts;
  opts.time_step_s = step_s;
  opts.max_time_s = horizon_s;
  ntr::sim::TransientSimulator sim(netlist.circuit, opts);

  const auto report = sim.measure_crossings(watch, tech.threshold_fraction);
  std::size_t worst = 0;
  for (std::size_t i = 1; i < watch.size(); ++i)
    if (report.crossing_s[i] > report.crossing_s[worst]) worst = i;

  ntr::sim::TransientSimulator replay(netlist.circuit, opts);
  const std::vector<ntr::spice::CircuitNode> one{watch[worst]};
  const auto wf = replay.run(horizon_s, one);
  time_axis = wf.time_s;
  return wf.voltage_v[0];
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  ntr::expt::NetGenerator gen(seed);
  const ntr::graph::Net net = gen.random_net(10);
  const ntr::spice::Technology tech = ntr::spice::kTable1Technology;
  const ntr::delay::TransientEvaluator measure(tech);

  const ntr::graph::RoutingGraph mst = ntr::graph::mst_routing(net);
  const ntr::core::LdrgResult ldrg_res = ntr::core::ldrg(mst, measure);

  const double t_mst = measure.max_delay(mst);
  const double horizon = 4.0 * t_mst;
  const double step = horizon / 2000.0;

  std::vector<double> time_axis;
  const std::vector<double> v_mst =
      worst_sink_waveform(mst, tech, horizon, step, time_axis);
  std::vector<double> time_axis2;
  const std::vector<double> v_ldrg =
      worst_sink_waveform(ldrg_res.graph, tech, horizon, step, time_axis2);

  ntr::sim::TransientSimulator::Waveform merged;
  merged.time_s = time_axis;
  merged.voltage_v = {v_mst,
                      std::vector<double>(v_ldrg.begin(),
                                          v_ldrg.begin() + std::min(v_ldrg.size(),
                                                                    v_mst.size()))};
  merged.voltage_v[1].resize(merged.time_s.size(),
                             merged.voltage_v[1].empty()
                                 ? 0.0
                                 : merged.voltage_v[1].back());
  merged.voltage_v[0].resize(merged.time_s.size(), 1.0);

  const std::vector<std::string> names{"v_mst", "v_ldrg"};
  std::ofstream out("waveforms.csv");
  ntr::sim::write_waveform_csv(out, merged, names);

  std::printf("worst-sink step responses written to waveforms.csv\n");
  std::printf("  MST  delay: %s\n", ntr::spice::format_time(t_mst).c_str());
  std::printf("  LDRG delay: %s (%zu extra wires)\n",
              ntr::spice::format_time(ldrg_res.final_objective).c_str(),
              ldrg_res.added_edges());
  std::printf("  %zu samples over %s\n", merged.time_s.size(),
              ntr::spice::format_time(horizon).c_str());
  return 0;
}
