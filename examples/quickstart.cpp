// Quickstart: route one random net every way this library knows and print
// a delay/wirelength scoreboard.
//
//   $ ./quickstart [seed]
//
// Walks through the core public API: net generation, tree constructions,
// the paper's non-tree LDRG algorithm and H1-H3 heuristics, and delay
// measurement with the transient (SPICE-substitute) engine.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/solver.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "spice/technology.h"
#include "spice/units.h"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1994;

  // A 10-pin net with pins uniform over the 10mm x 10mm layout of Table 1.
  ntr::expt::NetGenerator generator(seed);
  const ntr::graph::Net net = generator.random_net(10);

  const ntr::spice::Technology tech = ntr::spice::kTable1Technology;
  // The accurate oracle: full transient simulation, 50% threshold -- this
  // plays the role SPICE plays in the paper.
  const ntr::delay::TransientEvaluator spice_like(tech);

  const std::vector<ntr::core::Strategy> strategies{
      ntr::core::Strategy::kMst,     ntr::core::Strategy::kStar,
      ntr::core::Strategy::kSteinerTree, ntr::core::Strategy::kErt,
      ntr::core::Strategy::kH2,      ntr::core::Strategy::kH3,
      ntr::core::Strategy::kH1,      ntr::core::Strategy::kLdrg,
      ntr::core::Strategy::kSldrg,   ntr::core::Strategy::kErtLdrg,
  };

  std::printf("Routing a %zu-pin net (seed %llu)\n\n", net.size(),
              static_cast<unsigned long long>(seed));
  std::printf("  %-10s  %12s  %12s  %6s  %6s\n", "strategy", "delay", "wirelength",
              "t/tMST", "c/cMST");

  const ntr::core::Solution mst =
      ntr::core::solve(net, ntr::core::Strategy::kMst, spice_like);

  for (const ntr::core::Strategy s : strategies) {
    const ntr::core::Solution sol = ntr::core::solve(net, s, spice_like);
    std::printf("  %-10s  %12s  %9.0f um  %6.2f  %6.2f\n",
                ntr::core::strategy_name(s).c_str(),
                ntr::spice::format_time(sol.delay_s).c_str(), sol.cost_um,
                sol.delay_s / mst.delay_s, sol.cost_um / mst.cost_um);
  }

  std::printf(
      "\nLDRG adds non-tree (cycle-forming) wires whenever they lower the\n"
      "max source-sink delay; compare its delay column against MST.\n");
  return 0;
}
