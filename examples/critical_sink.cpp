// Critical-sink routing (CSORG, paper Section 5.1).
//
// Scenario: after timing-driven placement, static timing analysis flags
// ONE sink of a net as critical. This example routes the same net three
// ways and prints the per-sink delays, showing how the weighted non-tree
// objective shifts delay away from the critical sink:
//   1. plain MST,
//   2. LDRG minimizing the max delay (the ORG objective),
//   3. LDRG minimizing sum(alpha_i * t_i) with all weight on the critical
//      sink (the CSORG objective).
//
//   $ ./critical_sink [seed]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/ldrg.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "spice/units.h"

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  ntr::expt::NetGenerator generator(seed);
  const ntr::graph::Net net = generator.random_net(12);
  const ntr::spice::Technology tech = ntr::spice::kTable1Technology;
  const ntr::delay::TransientEvaluator measure(tech);

  const ntr::graph::RoutingGraph mst = ntr::graph::mst_routing(net);
  const std::vector<double> mst_delays = measure.sink_delays(mst);

  // The critical sink: the slowest one on the MST (what an STA pass would
  // report back to the router).
  std::size_t critical = 0;
  for (std::size_t i = 1; i < mst_delays.size(); ++i)
    if (mst_delays[i] > mst_delays[critical]) critical = i;

  std::vector<double> alpha(mst_delays.size(), 0.0);
  alpha[critical] = 1.0;

  const ntr::core::LdrgResult org = ntr::core::ldrg(mst, measure);

  ntr::core::LdrgOptions cs_opts;
  cs_opts.criticality = alpha;
  const ntr::core::LdrgResult csorg = ntr::core::ldrg(mst, measure, cs_opts);

  const std::vector<double> org_delays = measure.sink_delays(org.graph);
  const std::vector<double> cs_delays = measure.sink_delays(csorg.graph);

  std::printf("Net of %zu pins (seed %llu); critical sink = sink %zu\n\n", net.size(),
              static_cast<unsigned long long>(seed), critical);
  std::printf("  sink |      MST      ORG-LDRG    CSORG-LDRG\n");
  for (std::size_t i = 0; i < mst_delays.size(); ++i) {
    std::printf("  %3zu%c | %9s  %9s  %9s\n", i, i == critical ? '*' : ' ',
                ntr::spice::format_time(mst_delays[i]).c_str(),
                ntr::spice::format_time(org_delays[i]).c_str(),
                ntr::spice::format_time(cs_delays[i]).c_str());
  }

  std::printf("\ncritical sink delay: %s -> %s (ORG) -> %s (CSORG)\n",
              ntr::spice::format_time(mst_delays[critical]).c_str(),
              ntr::spice::format_time(org_delays[critical]).c_str(),
              ntr::spice::format_time(cs_delays[critical]).c_str());
  std::printf("wirelength: %.0f um (MST) -> %.0f um (ORG) -> %.0f um (CSORG)\n",
              mst.total_wirelength(), org.final_cost, csorg.final_cost);
  std::printf(
      "\nThe CSORG routing spends its extra wires exclusively on the\n"
      "critical sink; the ORG routing balances the worst sink overall.\n");
  return 0;
}
