// Wire sizing (WSORG, paper Section 5.2) and the HORG combination
// (Section 5.3): non-tree edges + wire widths on the same net.
//
// Routes one net as an MST, then (a) sizes its wires greedily, (b) runs
// LDRG, and (c) sizes the LDRG graph -- printing the delay/wire-area
// ledger for each step and the widths the greedy sizer chose.
//
//   $ ./wire_sizing [seed]

#include <cstdio>
#include <cstdlib>

#include "core/ldrg.h"
#include "core/wire_sizing.h"
#include "delay/evaluator.h"
#include "expt/net_generator.h"
#include "spice/units.h"

namespace {

void report(const char* label, double delay_s, double area,
            double base_delay, double base_area) {
  std::printf("  %-22s %10s  %9.0f um^2   %.3f   %.3f\n", label,
              ntr::spice::format_time(delay_s).c_str(), area, delay_s / base_delay,
              area / base_area);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

  ntr::expt::NetGenerator generator(seed);
  const ntr::graph::Net net = generator.random_net(15);
  const ntr::spice::Technology tech = ntr::spice::kTable1Technology;
  const ntr::delay::TransientEvaluator measure(tech);

  const ntr::graph::RoutingGraph mst = ntr::graph::mst_routing(net);
  const double base_delay = measure.max_delay(mst);
  const double base_area = mst.total_wire_area();

  std::printf("Net of %zu pins (seed %llu)\n\n", net.size(),
              static_cast<unsigned long long>(seed));
  std::printf("  %-22s %10s  %14s   t/tMST  a/aMST\n", "routing", "delay", "wire area");
  report("MST (all width 1)", base_delay, base_area, base_delay, base_area);

  // (a) WSORG on the tree.
  const ntr::core::WireSizingResult sized = ntr::core::greedy_wire_sizing(mst, measure);
  report("MST + wire sizing", sized.final_objective, sized.final_area, base_delay,
         base_area);

  // (b) ORG: LDRG extra edges, all width 1.
  const ntr::core::LdrgResult ldrg_res = ntr::core::ldrg(mst, measure);
  report("LDRG (non-tree)", ldrg_res.final_objective,
         ldrg_res.graph.total_wire_area(), base_delay, base_area);

  // (c) HORG: size the non-tree graph.
  const ntr::core::WireSizingResult horg =
      ntr::core::greedy_wire_sizing(ldrg_res.graph, measure);
  report("LDRG + wire sizing", horg.final_objective, horg.final_area, base_delay,
         base_area);

  std::printf("\nwidths chosen by the HORG sizing pass:\n");
  for (const ntr::core::SizingStep& s : horg.steps) {
    const ntr::graph::GraphEdge& e = horg.graph.edge(s.edge);
    std::printf("  edge %zu-%zu (%.0f um): width %.0f -> %.0f, delay %s -> %s\n", e.u,
                e.v, e.length, s.old_width, s.new_width,
                ntr::spice::format_time(s.objective_before).c_str(),
                ntr::spice::format_time(s.objective_after).c_str());
  }
  if (horg.steps.empty())
    std::printf("  (none -- sizing could not improve this net further)\n");

  std::printf(
      "\nBoth extra edges and wider wires trade capacitance for resistance;\n"
      "the paper's HORG formulation combines them, as steps (b)+(c) show.\n");
  return 0;
}
